//! The unified pipeline-stage abstraction of the batch-first inference
//! API.
//!
//! Every step of a compiled model — LUT convolution, LUT linear, ReLU,
//! pooling, flatten — implements [`Stage`]: take the whole batch as one
//! [`InferBatch`] column matrix, return the whole batch as one column
//! matrix. Nothing between stages ever splits the batch into per-sample
//! buffers, so consecutive table-lookup layers keep feeding the
//! lane-blocked `pecan-index` scanners matrices as wide as the batch —
//! the cross-layer batch carrying that PQ-DNN throughput lives on.
//!
//! Stages are compiled against a fixed per-sample input shape by
//! [`FrozenEngine::compile`](crate::FrozenEngine::compile) (or rebuilt by
//! the snapshot loader), which validates shape threading **once** via
//! [`Stage::out_shape`]; [`Stage::run`] then re-checks only the cheap
//! invariants it needs to stay panic-free.

use crate::error::ServeError;
use pecan_core::{InferBatch, LayerLut, UsageStats};
use pecan_tensor::Conv2dGeometry;
use std::any::Any;
use std::fmt;

/// One batch-in / batch-out step of a frozen inference pipeline.
///
/// The contract every implementation upholds:
///
/// * **Batch-first**: `run` consumes the whole batch as one column-major
///   [`InferBatch`] (see that type's layout contract) and returns one —
///   never per-sample buffers.
/// * **Batch-invariant**: each column's output depends only on that
///   column's input, so any batch composition is bit-identical to running
///   the columns one at a time (the property micro-batching relies on).
/// * **Shape-stable**: for an input batch whose per-sample shape is `s`,
///   the output per-sample shape is `out_shape(s)`, fixed at compile
///   time.
///
/// `stats`, when given, lets PECAN stages record per-group prototype
/// usage (Fig. 6 of the paper); non-LUT stages ignore it.
pub trait Stage: fmt::Debug + Send + Sync {
    /// Short stage kind name for diagnostics (`"lut-conv"`, `"relu"`, …).
    fn name(&self) -> &'static str;

    /// Per-sample output shape for a given per-sample input shape,
    /// validating that this stage can run on it.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when the input shape does not fit the
    /// stage.
    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, ServeError>;

    /// Runs the stage over the whole batch.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when the batch's per-sample shape does not
    /// fit the stage; [`ServeError::Engine`] for internal inconsistencies.
    fn run(
        &self,
        batch: InferBatch,
        stats: Option<&mut UsageStats>,
    ) -> Result<InferBatch, ServeError>;

    /// The stage's lookup-table engine, when it has one (LUT conv/linear).
    fn lut(&self) -> Option<&LayerLut> {
        None
    }

    /// Downcast hook (snapshot serialization walks the concrete types).
    fn as_any(&self) -> &dyn Any;
}

/// PECAN convolution: batched im2col into one `[patch_len, batch·n]`
/// matrix, one [`LayerLut::forward_cols`] sweep, then a single relayout
/// back to `[cout·Hout·Wout, batch]` sample columns.
#[derive(Debug)]
pub struct LutConvStage {
    lut: LayerLut,
    geom: Conv2dGeometry,
}

impl LutConvStage {
    /// Builds the stage from a compiled layer engine and its resolved
    /// im2col geometry.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when the geometry's patch length does not
    /// match the engine's PQ rows.
    pub fn new(lut: LayerLut, geom: Conv2dGeometry) -> Result<Self, ServeError> {
        if geom.patch_len() != lut.config().rows() {
            return Err(ServeError::BadInput(format!(
                "conv patch length {} does not match {} PQ rows",
                geom.patch_len(),
                lut.config().rows()
            )));
        }
        Ok(Self { lut, geom })
    }

    /// The layer's Algorithm-1 engine.
    pub fn lut_engine(&self) -> &LayerLut {
        &self.lut
    }

    /// The resolved im2col geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geom
    }
}

impl Stage for LutConvStage {
    fn name(&self) -> &'static str {
        "lut-conv"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, ServeError> {
        let expect = [self.geom.c_in(), self.geom.h_in(), self.geom.w_in()];
        if input != expect {
            return Err(ServeError::BadInput(format!(
                "lut-conv expects {expect:?}, pipeline carries {input:?}"
            )));
        }
        Ok(vec![self.lut.outputs(), self.geom.h_out(), self.geom.w_out()])
    }

    fn run(
        &self,
        batch: InferBatch,
        stats: Option<&mut UsageStats>,
    ) -> Result<InferBatch, ServeError> {
        let b = batch.cols();
        let n = self.geom.n_patches();
        let c_out = self.lut.outputs();
        // One column matrix for the whole batch: sample i's patches are
        // columns i·n .. (i+1)·n.
        let cols = batch.im2col(&self.geom)?;
        let y = self.lut.forward_cols(cols, stats)?; // [c_out, b·n]
        // Relayout patch columns into sample columns: sample i's output is
        // the [c_out, Hout·Wout] feature map flattened channel-major.
        let mut out = InferBatch::zeros(
            &[c_out, self.geom.h_out(), self.geom.w_out()],
            b,
        )?;
        for i in 0..b {
            let dst = out.col_mut(i);
            for p in 0..n {
                for (o, &v) in y.col(i * n + p).iter().enumerate() {
                    dst[o * n + p] = v;
                }
            }
        }
        Ok(out)
    }

    fn lut(&self) -> Option<&LayerLut> {
        Some(&self.lut)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// PECAN fully-connected layer: the batch is already the `[features,
/// batch]` column matrix [`LayerLut::forward_cols`] wants — zero
/// relayout on either side.
#[derive(Debug)]
pub struct LutLinearStage {
    lut: LayerLut,
}

impl LutLinearStage {
    /// Wraps a compiled linear-layer engine.
    pub fn new(lut: LayerLut) -> Self {
        Self { lut }
    }

    /// The layer's Algorithm-1 engine.
    pub fn lut_engine(&self) -> &LayerLut {
        &self.lut
    }
}

impl Stage for LutLinearStage {
    fn name(&self) -> &'static str {
        "lut-linear"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, ServeError> {
        let features = self.lut.config().rows();
        if input != [features] {
            return Err(ServeError::BadInput(format!(
                "lut-linear expects [{features}], pipeline carries {input:?}"
            )));
        }
        Ok(vec![self.lut.outputs()])
    }

    fn run(
        &self,
        batch: InferBatch,
        stats: Option<&mut UsageStats>,
    ) -> Result<InferBatch, ServeError> {
        Ok(self.lut.forward_cols(batch, stats)?)
    }

    fn lut(&self) -> Option<&LayerLut> {
        Some(&self.lut)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Elementwise `max(x, 0)` — one pass over the whole batch buffer, in
/// place.
#[derive(Debug)]
pub struct ReluStage;

impl Stage for ReluStage {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, ServeError> {
        Ok(input.to_vec())
    }

    fn run(
        &self,
        mut batch: InferBatch,
        _stats: Option<&mut UsageStats>,
    ) -> Result<InferBatch, ServeError> {
        for v in batch.data_mut() {
            *v = v.max(0.0);
        }
        Ok(batch)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Square-window max pooling over every `[c, h, w]` column — the same
/// scan order and strict-greater/first-wins tie-break as the training
/// path's `Var::max_pool2d`, so engine outputs track the model
/// bit-for-bit.
#[derive(Debug)]
pub struct MaxPoolStage {
    kernel: usize,
    stride: usize,
}

impl MaxPoolStage {
    /// Builds the stage from window size and stride.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when either is zero.
    pub fn new(kernel: usize, stride: usize) -> Result<Self, ServeError> {
        if kernel == 0 || stride == 0 {
            return Err(ServeError::BadInput(format!(
                "max-pool window {kernel}/stride {stride} must be non-zero"
            )));
        }
        Ok(Self { kernel, stride })
    }

    /// Window size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Step between windows.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl Stage for MaxPoolStage {
    fn name(&self) -> &'static str {
        "max-pool"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, ServeError> {
        if input.len() != 3 {
            return Err(ServeError::BadInput(format!(
                "max-pool expects [c, h, w], pipeline carries {input:?}"
            )));
        }
        let (c, h, w) = (input[0], input[1], input[2]);
        if self.kernel > h || self.kernel > w {
            return Err(ServeError::BadInput(format!(
                "max-pool window {}/stride {} does not fit {h}×{w}",
                self.kernel, self.stride
            )));
        }
        Ok(vec![
            c,
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        ])
    }

    fn run(
        &self,
        batch: InferBatch,
        _stats: Option<&mut UsageStats>,
    ) -> Result<InferBatch, ServeError> {
        let out_shape = self.out_shape(batch.sample_shape())?;
        let (c_n, h, w) = {
            let s = batch.sample_shape();
            (s[0], s[1], s[2])
        };
        let (h_out, w_out) = (out_shape[1], out_shape[2]);
        let mut out = InferBatch::zeros(&out_shape, batch.cols())?;
        for i in 0..batch.cols() {
            let src = batch.col(i);
            let dst = out.col_mut(i);
            let mut at = 0;
            for c in 0..c_n {
                let base = c * h * w;
                for oy in 0..h_out {
                    for ox in 0..w_out {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let v = src[base
                                    + (oy * self.stride + ky) * w
                                    + (ox * self.stride + kx)];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        dst[at] = best;
                        at += 1;
                    }
                }
            }
        }
        Ok(out)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// `[c, h, w] → [c]` mean over the spatial plane of every column.
#[derive(Debug)]
pub struct GlobalAvgPoolStage;

impl Stage for GlobalAvgPoolStage {
    fn name(&self) -> &'static str {
        "global-avg-pool"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, ServeError> {
        if input.len() != 3 {
            return Err(ServeError::BadInput(format!(
                "global-avg-pool expects [c, h, w], pipeline carries {input:?}"
            )));
        }
        Ok(vec![input[0]])
    }

    fn run(
        &self,
        batch: InferBatch,
        _stats: Option<&mut UsageStats>,
    ) -> Result<InferBatch, ServeError> {
        self.out_shape(batch.sample_shape())?;
        let (c_n, hw) = {
            let s = batch.sample_shape();
            (s[0], s[1] * s[2])
        };
        let mut out = InferBatch::zeros(&[c_n], batch.cols())?;
        for i in 0..batch.cols() {
            let src = batch.col(i);
            let dst = out.col_mut(i);
            for (c, slot) in dst.iter_mut().enumerate() {
                let s: f32 = src[c * hw..(c + 1) * hw].iter().sum();
                *slot = s / hw as f32;
            }
        }
        Ok(out)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Shape-only collapse to a vector — metadata-only on a column-major
/// batch, zero copies.
#[derive(Debug)]
pub struct FlattenStage;

impl Stage for FlattenStage {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, ServeError> {
        Ok(vec![input.iter().product()])
    }

    fn run(
        &self,
        batch: InferBatch,
        _stats: Option<&mut UsageStats>,
    ) -> Result<InferBatch, ServeError> {
        let features = batch.features();
        Ok(batch.reshaped(&[features])?)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_stages_preserve_shape_and_layout() {
        let batch = InferBatch::from_samples(
            &[vec![-1.0, 2.0, -3.0, 4.0], vec![0.5, -0.5, 0.0, -0.0]],
            &[1, 2, 2],
        )
        .unwrap();
        let out = ReluStage.run(batch, None).unwrap();
        assert_eq!(out.col(0), &[0.0, 2.0, 0.0, 4.0]);
        assert_eq!(out.col(1), &[0.5, 0.0, 0.0, -0.0]);
        assert_eq!(out.sample_shape(), &[1, 2, 2]);

        let flat = FlattenStage.run(out, None).unwrap();
        assert_eq!(flat.sample_shape(), &[4]);
    }

    #[test]
    fn max_pool_matches_hand_computed_windows() {
        // one 1×4×4 sample, 2×2 windows, stride 2
        let sample: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let batch = InferBatch::from_samples(&[sample], &[1, 4, 4]).unwrap();
        let pool = MaxPoolStage::new(2, 2).unwrap();
        let out = pool.run(batch, None).unwrap();
        assert_eq!(out.sample_shape(), &[1, 2, 2]);
        assert_eq!(out.col(0), &[5.0, 7.0, 13.0, 15.0]);
        assert!(MaxPoolStage::new(0, 1).is_err());
        assert!(pool.out_shape(&[4]).is_err());
        assert!(pool.out_shape(&[1, 1, 1]).is_err());
    }

    #[test]
    fn global_avg_pool_means_each_plane() {
        let batch = InferBatch::from_samples(
            &[vec![1.0, 3.0, 5.0, 7.0, 10.0, 10.0, 10.0, 10.0]],
            &[2, 2, 2],
        )
        .unwrap();
        let out = GlobalAvgPoolStage.run(batch, None).unwrap();
        assert_eq!(out.col(0), &[4.0, 10.0]);
        assert!(GlobalAvgPoolStage.out_shape(&[4]).is_err());
    }
}

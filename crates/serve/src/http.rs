//! Std-only HTTP/1.1 front end over [`std::net::TcpListener`].
//!
//! The environment is offline, so the server is hand-rolled on the
//! standard library: blocking accept loop, one handler thread per
//! connection (keep-alive supported), no TLS, no chunked encoding —
//! exactly enough protocol for serving and load-generation.
//!
//! # Endpoints
//!
//! | route | method | body | answer |
//! |---|---|---|---|
//! | `/predict` | POST | JSON array of `input_len` floats | `{"output":[…],"latency_us":n,"batch_size":n}` |
//! | `/models/{name}/predict` | POST | as above | as above, for the named model |
//! | `/healthz` | GET | — | `{"status":"ok","model":…,"input_len":n,"output_len":n,"models":[…]}` |
//! | `/models/{name}/healthz` | GET | — | the named model's contract |
//! | `/stats` | GET | — | `{"default":…,"models":{name: counters, …}}`, see [`StatsSnapshot`](crate::StatsSnapshot) |
//! | `/models/{name}/stats` | GET | — | the named model's flat counters |
//! | `/shutdown` | POST | — | acknowledges, then the server drains and stops |
//!
//! The bare routes serve the registry's **default** model, so single-model
//! deployments and old clients keep working unchanged. An unknown model
//! name answers `404` with `{"error":"unknown model …"}`. Backpressure
//! surfaces as `503` with `{"error":"overloaded"}`; malformed requests as
//! `400`.

use crate::error::ServeError;
use crate::json;
use crate::registry::EngineRegistry;
use crate::scheduler::SchedulerConfig;
use crate::stats::StatsSnapshot;
use crate::FrozenEngine;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Front-end tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port `0` for an ephemeral port (the bound address
    /// is reported by [`Server::local_addr`]).
    pub addr: String,
    /// Scheduler configuration used when [`Server::start`] wraps a single
    /// engine into a one-model registry. Ignored by
    /// [`Server::start_registry`] (each registered model already carries
    /// its scheduler).
    pub scheduler: SchedulerConfig,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig::default(),
            max_body: 1 << 20,
            read_timeout: Duration::from_secs(30),
        }
    }
}

struct HttpShared {
    registry: EngineRegistry,
    max_body: usize,
    read_timeout: Duration,
    stopping: AtomicBool,
    shutdown_tx: mpsc::Sender<()>,
}

/// A running serving endpoint: accept loop + per-model schedulers +
/// frozen engines.
///
/// Construct with [`Server::start`] (one model) or
/// [`Server::start_registry`] (multi-model); stop gracefully with
/// [`Server::stop`] (drains all queued requests) or let a client
/// `POST /shutdown` and wait for that with [`Server::run`].
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<HttpShared>,
    accept: Mutex<Option<JoinHandle<()>>>,
    shutdown_rx: Mutex<mpsc::Receiver<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("local_addr", &self.local_addr).finish()
    }
}

impl Server {
    /// Single-model convenience: wraps `engine` into a one-model registry
    /// (named after [`FrozenEngine::name`], `"default"` when unnamed) and
    /// serves it.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the address cannot be bound.
    pub fn start(engine: Arc<FrozenEngine>, config: ServerConfig) -> io::Result<Server> {
        let mut registry = EngineRegistry::new();
        registry
            .register(engine, config.scheduler.clone())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        Self::start_registry(registry, config)
    }

    /// Binds, adopts the registry's per-model schedulers, spawns the
    /// accept loop, and starts answering on every model's routes.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the registry is empty or the address cannot be
    /// bound.
    pub fn start_registry(registry: EngineRegistry, config: ServerConfig) -> io::Result<Server> {
        if registry.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot serve an empty model registry",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let (shutdown_tx, shutdown_rx) = mpsc::channel();
        let shared = Arc::new(HttpShared {
            registry,
            max_body: config.max_body,
            read_timeout: config.read_timeout,
            stopping: AtomicBool::new(false),
            shutdown_tx,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("pecan-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawning the accept loop");
        Ok(Server {
            local_addr,
            shared,
            accept: Mutex::new(Some(accept)),
            shutdown_rx: Mutex::new(shutdown_rx),
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live counters of the default model's scheduler.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.registry.default_model().scheduler().stats()
    }

    /// The served models.
    pub fn registry(&self) -> &EngineRegistry {
        &self.shared.registry
    }

    /// Blocks until a client requests `POST /shutdown`, then stops
    /// gracefully. Used by the `serve` binary.
    pub fn run(self) {
        // A send error means the sender (shared state) is gone, which only
        // happens at teardown — either way, proceed to stop.
        let _ = lock(&self.shutdown_rx).recv();
        self.stop();
    }

    /// Graceful stop: refuse new connections, drain every queued request
    /// of every model, join the accept loop and scheduler workers.
    /// Idempotent.
    pub fn stop(&self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `accept`; poke it so it observes the
        // flag. Failure is fine — it means the listener is already gone.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = lock(&self.accept).take() {
            let _ = handle.join();
        }
        self.shared.registry.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn accept_loop(listener: &TcpListener, shared: &Arc<HttpShared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        // Handler threads are detached: a graceful stop drains the
        // scheduler, so in-flight requests still get answers before the
        // process exits.
        let _ = std::thread::Builder::new()
            .name("pecan-serve-conn".into())
            .spawn(move || handle_connection(stream, &conn_shared));
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<HttpShared>) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut leftover: Vec<u8> = Vec::new();
    loop {
        let request = match read_request(&mut stream, &mut leftover, shared.max_body) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean EOF between requests
            Err(status) => {
                let _ = respond(&mut stream, status, &error_body(status), false);
                return;
            }
        };
        let keep_alive = request.keep_alive;
        let (status, body, initiate_shutdown) = route(shared, &request);
        let written = respond(&mut stream, status, &body, keep_alive);
        if initiate_shutdown {
            // Signal only after the acknowledgement left this socket, so a
            // client posting /shutdown always reads its 200 before the
            // process starts tearing down.
            let _ = shared.shutdown_tx.send(());
        }
        if written.is_err() || !keep_alive {
            return;
        }
    }
}

struct Request {
    method: String,
    target: String,
    body: Vec<u8>,
    keep_alive: bool,
}

/// Reads one HTTP/1.1 request. `Ok(None)` is a clean close before the
/// first byte; `Err(status)` is the HTTP status to answer before closing.
fn read_request(
    stream: &mut TcpStream,
    leftover: &mut Vec<u8>,
    max_body: usize,
) -> Result<Option<Request>, u16> {
    const HEAD_LIMIT: usize = 16 << 10;
    let mut buf = std::mem::take(leftover);
    let head_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        if buf.len() > HEAD_LIMIT {
            return Err(431);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() { Ok(None) } else { Err(400) };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => {
                return if buf.is_empty() { Ok(None) } else { Err(408) };
            }
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let body_start = head_end + 4;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let target = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(400);
    }
    let mut content_length = 0usize;
    // Persistence default follows the protocol version: 1.1 keeps alive
    // unless told otherwise, 1.0 closes unless told otherwise.
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| 400u16)?;
            }
            "connection" => keep_alive = value.eq_ignore_ascii_case("keep-alive"),
            _ => {}
        }
    }
    if content_length > max_body {
        return Err(413);
    }
    let mut body = buf[body_start..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(400),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(408),
        }
    }
    // Bytes past this request's body belong to the next pipelined request.
    *leftover = body.split_off(content_length);
    Ok(Some(Request { method, target, body, keep_alive }))
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits `/models/{name}/rest` into `(Some(name), "/rest")`; any other
/// target passes through as `(None, target)`.
fn split_model(target: &str) -> (Option<&str>, &str) {
    if let Some(tail) = target.strip_prefix("/models/") {
        if let Some(slash) = tail.find('/') {
            return (Some(&tail[..slash]), &tail[slash..]);
        }
    }
    (None, target)
}

/// Routes one request to `(status, body, initiate-shutdown-after-respond)`.
fn route(shared: &Arc<HttpShared>, request: &Request) -> (u16, String, bool) {
    let (model, path) = split_model(&request.target);
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let (status, body) = healthz(shared, model);
            (status, body, false)
        }
        ("GET", "/stats") => {
            let (status, body) = stats(shared, model);
            (status, body, false)
        }
        ("POST", "/predict") => {
            let (status, body) = predict(shared, model, &request.body);
            (status, body, false)
        }
        // Shutdown is server-wide: only the bare route exists.
        ("POST", "/shutdown") if model.is_none() => {
            (200, "{\"status\":\"shutting down\"}".into(), true)
        }
        ("GET" | "POST", _) => (404, "{\"error\":\"no such route\"}".into(), false),
        _ => (405, "{\"error\":\"method not allowed\"}".into(), false),
    }
}

fn error_response(e: &ServeError) -> (u16, String) {
    let status = match e {
        ServeError::BadInput(_) => 400,
        ServeError::UnknownModel(_) => 404,
        ServeError::Overloaded { .. } | ServeError::ShuttingDown => 503,
        _ => 500,
    };
    (status, format!("{{\"error\":\"{}\"}}", json::escape(&e.to_string())))
}

fn healthz(shared: &Arc<HttpShared>, model: Option<&str>) -> (u16, String) {
    let entry = match shared.registry.resolve(model) {
        Ok(e) => e,
        Err(e) => return error_response(&e),
    };
    let models: Vec<String> = shared
        .registry
        .names()
        .iter()
        .map(|n| format!("\"{}\"", json::escape(n)))
        .collect();
    (
        200,
        format!(
            "{{\"status\":\"ok\",\"model\":\"{}\",\"input_len\":{},\"output_len\":{},\"models\":[{}]}}",
            json::escape(entry.name()),
            entry.engine().input_len(),
            entry.engine().output_len(),
            models.join(",")
        ),
    )
}

fn stats(shared: &Arc<HttpShared>, model: Option<&str>) -> (u16, String) {
    match model {
        // Bare /stats: every model's counters, keyed by name.
        None => (200, shared.registry.stats_json()),
        Some(_) => match shared.registry.resolve(model) {
            Ok(entry) => (200, entry.scheduler().stats().to_json()),
            Err(e) => error_response(&e),
        },
    }
}

fn predict(shared: &Arc<HttpShared>, model: Option<&str>, body: &[u8]) -> (u16, String) {
    let entry = match shared.registry.resolve(model) {
        Ok(e) => e,
        Err(e) => return error_response(&e),
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return (400, "{\"error\":\"body is not UTF-8\"}".into());
    };
    let input = match json::parse_f32_array(text) {
        Ok(v) => v,
        Err(e) => return (400, format!("{{\"error\":\"{}\"}}", json::escape(&e))),
    };
    match entry.scheduler().predict(input) {
        Ok(p) => (
            200,
            format!(
                "{{\"output\":{},\"latency_us\":{},\"batch_size\":{}}}",
                json::format_f32_array(&p.output),
                p.total.as_micros(),
                p.batch_size
            ),
        ),
        Err(e) => error_response(&e),
    }
}

fn error_body(status: u16) -> String {
    format!("{{\"error\":\"{}\"}}", reason(status))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_line_finder() {
        assert_eq!(find_blank_line(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_blank_line(b"partial\r\n"), None);
    }

    #[test]
    fn model_prefix_splitting() {
        assert_eq!(split_model("/predict"), (None, "/predict"));
        assert_eq!(split_model("/models/mlp/predict"), (Some("mlp"), "/predict"));
        assert_eq!(split_model("/models/a-b.c/healthz"), (Some("a-b.c"), "/healthz"));
        // no inner slash → not a model route, falls through to 404
        assert_eq!(split_model("/models/mlp"), (None, "/models/mlp"));
    }

    #[test]
    fn reasons_cover_used_statuses() {
        for s in [200, 400, 404, 405, 408, 413, 431, 500, 503] {
            assert_ne!(reason(s), "Unknown");
        }
    }
}

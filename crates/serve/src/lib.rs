//! Model serving for PECAN: the Algorithm-1 inference path as a
//! production-shaped subsystem.
//!
//! The paper's value proposition is *inference* — CAM searches plus LUT
//! reads with no dense arithmetic — and this crate turns that path into a
//! server. Six layers, each usable on its own:
//!
//! 1. **Batch-first pipeline** — the whole batch flows as **one**
//!    column-major [`pecan_core::InferBatch`] matrix through a sequence of
//!    [`Stage`]s (LUT conv, LUT linear, ReLU, pooling, flatten). No
//!    per-sample split/rejoin happens between stages, so consecutive
//!    table-lookup layers keep the lane-blocked `pecan-index` scanners fed
//!    with matrices as wide as the batch.
//! 2. **[`FrozenEngine`]** — an immutable compiled inference plan:
//!    per-layer [`pecan_core::LayerLut`]s and im2col geometry precomputed
//!    once from a trained model, then shared lock-free (`Arc`) across any
//!    number of threads. [`FrozenEngine::infer`] is the batch-matrix entry
//!    point; [`FrozenEngine::predict`] / [`FrozenEngine::predict_batch`]
//!    remain as sample-shaped shims with bit-identical results.
//! 3. **Model snapshots** — a versioned, endian-stable binary format
//!    (normative spec: `docs/snapshot-format.md`). Version 3 lays the
//!    weights out in 64-byte-aligned little-endian sections with a
//!    header-resident directory and per-section CRC-32s, so
//!    [`FrozenEngine::open_snapshot`] can **memory-map** the file and
//!    serve straight from page cache — cold start is a header parse, not
//!    a copy, no matter the model size. The copying loader
//!    ([`FrozenEngine::load_snapshot`]) verifies every checksum and
//!    loads v1/v2 files bit-identically; the `snapshot-tool` binary
//!    inspects, verifies and converts between versions.
//! 4. **[`BatchScheduler`]** — micro-batching over a bounded queue:
//!    concurrent requests are drained up to `max_batch`/`max_wait` and run
//!    through the engine's batch kernels by persistent workers;
//!    a full queue rejects with [`ServeError::Overloaded`] (backpressure),
//!    and shutdown drains every accepted request.
//! 5. **[`EngineRegistry`] + [`Server`]** — multi-model serving with a
//!    zero-downtime lifecycle: any number of snapshots side by side, each
//!    with its own scheduler and counters, routed by a std-only HTTP/1.1
//!    front end (`/models/{name}/predict`, bare `/predict` for the
//!    default model, `/healthz`, `/stats`, `/reload`, `/shutdown`) plus
//!    the `serve` and `loadgen` binaries. Models can be **hot-registered**
//!    and **blue/green reloaded** while serving (`POST
//!    /models/{name}/reload`, [`ModelEntry::reload_from_source`], or the
//!    `--model-dir` directory watcher): the new engine starts answering
//!    atomically while the old scheduler drains, so no request is dropped
//!    and counters carry across versions. Two interchangeable front ends
//!    share one parser, router
//!    and encoder: portable thread-per-connection, and an epoll **event
//!    loop** ([`ServerConfig::event_loop`], Linux `x86_64`/`aarch64` —
//!    see [`event_loop_supported`]) that multiplexes thousands of
//!    non-blocking sockets on one thread with completion wakeups from the
//!    scheduler, per-connection idle deadlines, a connection cap, and
//!    load-aware `503` shedding ([`ConnStatsSnapshot`] under the
//!    `"connections"` key of `/stats`).
//! 6. **Observability** ([`obs`]) — lock-free instruments on the hot
//!    path: log-bucketed latency [`Histogram`]s (queue / inference /
//!    total and batch size per model, plus per-stage wall time through
//!    [`StageObserver`]), a bounded [`FlightRecorder`] holding the
//!    newest request spans (`GET /debug/requests`), a `PECAN_LOG`-leveled
//!    logfmt stderr logger, and a Prometheus text exposition at
//!    `GET /metrics` served identically by both front ends.
//!
//! # Quickstart
//!
//! ```
//! use pecan_serve::{EngineRegistry, SchedulerConfig, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! // Compile two (demo) models and serve them side by side.
//! let registry = EngineRegistry::new();
//! registry.register(Arc::new(pecan_serve::demo::mlp_engine(1)),
//!                   SchedulerConfig::default()).unwrap();
//! registry.register(Arc::new(pecan_serve::demo::lenet_engine(1)),
//!                   SchedulerConfig::default()).unwrap();
//! let server = Server::start_registry(registry, ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.local_addr());
//! // POST /predict            → the default model ("mlp", first registered)
//! // POST /models/lenet/predict → the other one
//! server.stop(); // graceful: drains queued requests of every model
//! ```
//!
//! Or from the command line:
//!
//! ```text
//! cargo run --release -p pecan-serve --bin serve -- --demo mlp --save mlp.psnp
//! cargo run --release -p pecan-serve --bin serve -- --demo lenet --save lenet.psnp
//! cargo run --release -p pecan-serve --bin serve -- \
//!     --snapshot mlp.psnp --model lenet=lenet.psnp --addr 127.0.0.1:7878
//! cargo run --release -p pecan-serve --bin loadgen -- \
//!     --addr 127.0.0.1:7878 --model lenet --connections 8 --requests 400
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod client;
pub mod demo;
mod engine;
mod error;
mod http;
pub mod json;
mod mapped;
pub mod obs;
mod registry;
mod scheduler;
mod snapshot;
mod stage;
mod stats;
mod watcher;

pub use engine::FrozenEngine;
pub use error::{ServeError, SnapshotError};
pub use http::parser::{ParseError, Request, RequestParser};
pub use http::{event_loop_supported, Server, ServerConfig};
pub use mapped::mmap_supported;
pub use obs::{FlightRecorder, Histogram, HistogramSnapshot, StageObserver, TraceRecord};
// The logfmt macros moved to `pecan-obs` with the histogram; re-exported
// so `pecan_serve::log_error!` / `crate::log_warn!` call sites compile
// exactly as before the hoist.
pub use pecan_obs::{log_at, log_debug, log_error, log_info, log_trace, log_warn};
pub use registry::{EngineRegistry, LoadMode, ModelEntry, ModelSource};
pub use scheduler::{BatchRunner, BatchScheduler, Complete, Prediction, SchedulerConfig, Ticket};
pub use snapshot::{
    crc32, inspect_snapshot_bytes, SectionInfo, SnapshotInfo, SECTION_ALIGN, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use stage::{
    FlattenStage, GlobalAvgPoolStage, LutConvStage, LutLinearStage, MaxPoolStage, ReluStage,
    Stage,
};
pub use stats::{ConnStats, ConnStatsSnapshot, ServeStats, StatsSnapshot};
pub use watcher::{ModelWatcher, WatcherConfig};

//! Model serving for PECAN: the Algorithm-1 inference path as a
//! production-shaped subsystem.
//!
//! The paper's value proposition is *inference* — CAM searches plus LUT
//! reads with no dense arithmetic — and this crate turns that path into a
//! server. Four layers, each usable on its own:
//!
//! 1. **[`FrozenEngine`]** — an immutable compiled inference plan:
//!    per-layer [`pecan_core::LayerLut`]s and im2col geometry precomputed
//!    once from a trained model, then shared lock-free (`Arc`) across any
//!    number of threads. Batched and single-request inference are
//!    bit-identical by construction.
//! 2. **Model snapshots** — a versioned, endian-stable binary format
//!    ([`FrozenEngine::save_snapshot`] / [`FrozenEngine::load_snapshot`]):
//!    magic, version, per-layer codebooks/LUTs/biases as raw little-endian
//!    bits, CRC-32 checksum. A reloaded engine predicts bit-identically to
//!    the saved one.
//! 3. **[`BatchScheduler`]** — micro-batching over a bounded queue:
//!    concurrent requests are drained up to `max_batch`/`max_wait` and run
//!    through the engine's batch kernels by persistent workers;
//!    a full queue rejects with [`ServeError::Overloaded`] (backpressure),
//!    and shutdown drains every accepted request.
//! 4. **[`Server`]** — a std-only HTTP/1.1 front end (`/predict`,
//!    `/healthz`, `/stats`, `/shutdown`) plus the `serve` and `loadgen`
//!    binaries.
//!
//! # Quickstart
//!
//! ```
//! use pecan_serve::{FrozenEngine, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! // Compile a (demo) model and serve it.
//! let engine = Arc::new(pecan_serve::demo::mlp_engine(1));
//! let server = Server::start(engine.clone(), ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.local_addr());
//! server.stop(); // graceful: drains queued requests
//! ```
//!
//! Or from the command line:
//!
//! ```text
//! cargo run --release -p pecan-serve --bin serve -- --demo mlp --save model.psnp
//! cargo run --release -p pecan-serve --bin serve -- --snapshot model.psnp --addr 127.0.0.1:7878
//! cargo run --release -p pecan-serve --bin loadgen -- --addr 127.0.0.1:7878 --connections 8 --requests 400
//! ```

pub mod client;
pub mod demo;
mod engine;
mod error;
mod http;
pub mod json;
mod scheduler;
mod snapshot;
mod stats;

pub use engine::FrozenEngine;
pub use error::{ServeError, SnapshotError};
pub use http::{Server, ServerConfig};
pub use scheduler::{BatchRunner, BatchScheduler, Prediction, SchedulerConfig, Ticket};
pub use snapshot::{crc32, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use stats::{ServeStats, StatsSnapshot};

use pecan_tensor::ShapeError;
use std::fmt;
use std::io;

/// Serving-path error: everything that can go wrong between a request
/// arriving and a prediction leaving.
///
/// The type is `Clone` so one failed batch can report the same error to
/// every request it contained, and each variant maps onto a specific HTTP
/// status in the front end (`400` for [`ServeError::BadInput`], `404` for
/// [`ServeError::UnknownModel`], `503` for [`ServeError::Overloaded`] /
/// [`ServeError::ShuttingDown`], `500` for the rest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request payload does not fit the engine (wrong input length,
    /// unparsable body).
    BadInput(String),
    /// The submission queue is full — backpressure. Retry later.
    Overloaded {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The scheduler is draining and accepts no new work.
    ShuttingDown,
    /// The inference engine itself failed (internal — engines validate
    /// their stages at compile time, so this indicates a bug).
    Engine(String),
    /// A model contains a layer the frozen engine cannot compile
    /// (standard/uncompressed layers, BatchNorm, custom blocks).
    Unsupported(String),
    /// The request named a model the registry does not serve — the typed
    /// 404 of the multi-model HTTP front end.
    UnknownModel(String),
    /// The worker serving this request disappeared before answering.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadInput(msg) => write!(f, "bad input: {msg}"),
            ServeError::Overloaded { capacity } => {
                write!(f, "overloaded: submission queue at capacity {capacity}")
            }
            ServeError::ShuttingDown => write!(f, "scheduler is shutting down"),
            ServeError::Engine(msg) => write!(f, "engine failure: {msg}"),
            ServeError::Unsupported(msg) => write!(f, "unsupported model: {msg}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model `{name}`"),
            ServeError::Disconnected => write!(f, "serving worker disconnected"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ShapeError> for ServeError {
    fn from(e: ShapeError) -> Self {
        ServeError::Engine(e.to_string())
    }
}

/// Error decoding or encoding a model snapshot.
///
/// Every corruption mode is a typed, non-panicking variant: the loader is
/// exercised against truncated files, flipped bytes, bad magic and future
/// versions in `tests/snapshot_roundtrip.rs`.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The snapshot was written by a newer (or unknown) format revision.
    UnsupportedVersion {
        /// Version number found in the header.
        found: u32,
    },
    /// The payload does not hash to the stored checksum — bit rot or a
    /// partial write.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// The file ends before the structure it declares (also covers files
    /// too short to hold the header/checksum at all).
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// Structurally invalid contents despite a valid checksum (impossible
    /// tags, inconsistent shapes, trailing bytes).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapshotError::BadMagic => write!(f, "not a PECAN snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} more bytes, {available} available"
            ),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::Overloaded { capacity: 4 }.to_string().contains("capacity 4"));
        assert!(ServeError::UnknownModel("m2".into()).to_string().contains("`m2`"));
        assert!(ServeError::from(ShapeError::new("boom")).to_string().contains("boom"));
        let e = SnapshotError::ChecksumMismatch { stored: 1, computed: 2 };
        assert!(e.to_string().contains("checksum"));
        assert!(SnapshotError::Truncated { needed: 8, available: 3 }
            .to_string()
            .contains("truncated"));
    }
}

//! Micro-batching scheduler: aggregates concurrent requests into batches
//! for the frozen engine's batch kernels.
//!
//! Requests enter a **bounded** submission queue; a full queue rejects
//! immediately with [`ServeError::Overloaded`] (backpressure — callers see
//! it as HTTP 503 and retry, rather than latency collapsing for everyone).
//! Persistent worker threads drain the queue in batches: a worker takes
//! whatever is waiting, and when that is fewer than `max_batch` it lingers
//! up to `max_wait` for stragglers before running the batch. Because
//! batched inference is bit-identical to sequential inference (see
//! [`FrozenEngine::predict_batch`](crate::FrozenEngine::predict_batch)),
//! batching is purely a throughput decision — responses never depend on
//! which requests happened to share a batch.
//!
//! # Thread-pool note (ROADMAP "per-call pool reuse")
//!
//! The serving hot path performs **zero thread spawns per request**: the
//! scheduler's workers are spawned once at construction and live until
//! shutdown, and everything a worker calls — `LayerLut::forward_cols`,
//! `AnalogCam::search_batch`, the `pecan-index` batch scanner, LUT
//! accumulation — is spawn-free single-threaded code. The
//! `std::thread::scope` pool in `pecan-tensor` is only entered by GEMMs,
//! which serving never issues (the `W·C` products were precomputed at
//! engine-compile time; that one-time cost is the only pool use). So there
//! is no per-call spawn overhead to amortize here: worker-thread reuse
//! *is* the pool reuse, and cross-request parallelism comes from running
//! several workers (`SchedulerConfig::workers`) against one shared
//! engine.

use crate::error::ServeError;
use crate::obs::StageObserver;
use crate::stats::{ServeStats, StatsSnapshot};
use crate::FrozenEngine;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Anything that can answer batches of flat `f32` requests.
///
/// [`FrozenEngine`] is the production implementation; tests substitute
/// gated fakes to pin queue semantics deterministically.
pub trait BatchRunner: Send + Sync + 'static {
    /// Flat values each request must carry.
    fn input_len(&self) -> usize;
    /// Flat values each response carries.
    fn output_len(&self) -> usize;
    /// Answers `inputs` in order. Must be bit-identical to answering each
    /// input in a batch of one.
    ///
    /// # Errors
    ///
    /// Implementation-defined; the scheduler clones the error to every
    /// request of the failed batch.
    fn run_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ServeError>;

    /// Distinct stage kinds this runner executes, in pipeline order —
    /// the scheduler sizes its per-stage latency histograms from this.
    /// The default (no stages) disables per-stage timing.
    fn stage_kinds(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// As [`BatchRunner::run_batch`], optionally reporting per-stage
    /// wall time to `obs`. The default ignores the observer, so plain
    /// runners (and test doubles) need not care.
    ///
    /// # Errors
    ///
    /// As for [`BatchRunner::run_batch`].
    fn run_batch_observed(
        &self,
        inputs: &[Vec<f32>],
        obs: Option<&dyn StageObserver>,
    ) -> Result<Vec<Vec<f32>>, ServeError> {
        let _ = obs;
        self.run_batch(inputs)
    }
}

impl BatchRunner for FrozenEngine {
    fn input_len(&self) -> usize {
        FrozenEngine::input_len(self)
    }
    fn output_len(&self) -> usize {
        FrozenEngine::output_len(self)
    }
    fn run_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ServeError> {
        self.predict_batch(inputs)
    }
    fn stage_kinds(&self) -> Vec<&'static str> {
        FrozenEngine::stage_kinds(self)
    }
    fn run_batch_observed(
        &self,
        inputs: &[Vec<f32>],
        obs: Option<&dyn StageObserver>,
    ) -> Result<Vec<Vec<f32>>, ServeError> {
        self.predict_batch_observed(inputs, obs)
    }
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Most requests one batch may contain (≥ 1). `1` disables batching.
    pub max_batch: usize,
    /// How long a worker lingers for stragglers once it holds at least one
    /// request but fewer than `max_batch`. Zero means "run with whatever is
    /// queued right now".
    pub max_wait: Duration,
    /// Bounded queue depth; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Persistent worker threads (≥ 1).
    pub workers: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_wait: Duration::from_micros(200),
            queue_capacity: 256,
            workers: 1,
        }
    }
}

/// One answered request with its latency accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The engine output.
    pub output: Vec<f32>,
    /// Time spent waiting in the queue before the batch started.
    pub queued: Duration,
    /// Submit→answer wall clock.
    pub total: Duration,
    /// How many requests shared this request's batch.
    pub batch_size: usize,
    /// ID of the batch this request rode in (1-based, unique per
    /// scheduler) — correlates flight-recorder traces across requests.
    pub batch_id: u64,
}

/// Completion callback type of [`BatchScheduler::submit_with`].
pub type Complete = Box<dyn FnOnce(Result<Prediction, ServeError>) + Send>;

/// How one request's answer travels back to its submitter.
enum Reply {
    /// [`BatchScheduler::submit`]: a blocking caller waits on the channel.
    Channel(mpsc::Sender<Result<Prediction, ServeError>>),
    /// [`BatchScheduler::submit_with`]: the worker invokes the callback —
    /// the completion wakeup the event-loop front end is built on.
    Callback(Complete),
}

impl Reply {
    fn send(self, result: Result<Prediction, ServeError>) {
        match self {
            // A dropped receiver means the client went away; nothing to do.
            Reply::Channel(tx) => drop(tx.send(result)),
            Reply::Callback(f) => f(result),
        }
    }
}

struct Request {
    input: Vec<f32>,
    submitted: Instant,
    reply: Reply,
}

struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    runner: Arc<dyn BatchRunner>,
    config: SchedulerConfig,
    state: Mutex<QueueState>,
    cvar: Condvar,
    // Shared (`Arc`) so a model's counters survive blue/green engine
    // swaps: the registry hands each replacement scheduler the same store.
    stats: Arc<ServeStats>,
}

/// A claim on a submitted request; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl Ticket {
    /// Blocks until the scheduler answers this request.
    ///
    /// # Errors
    ///
    /// Whatever the batch produced, or [`ServeError::Disconnected`] if the
    /// serving worker vanished.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }
}

/// The micro-batching scheduler. See the module docs.
///
/// # Example
///
/// ```
/// use pecan_serve::{BatchScheduler, SchedulerConfig};
/// use std::sync::Arc;
///
/// let engine = Arc::new(pecan_serve::demo::mlp_engine(5));
/// let scheduler = BatchScheduler::start(engine.clone(), SchedulerConfig::default());
/// let input = vec![0.5; engine.input_len()];
/// let answer = scheduler.predict(input.clone()).unwrap();
/// // scheduling and batching never change the bits
/// assert_eq!(answer.output, engine.predict(&input).unwrap());
/// scheduler.shutdown();
/// ```
pub struct BatchScheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for BatchScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler").field("config", &self.shared.config).finish()
    }
}

impl BatchScheduler {
    /// Spawns the worker threads and starts serving.
    ///
    /// Invalid knobs are clamped to sane floors (`max_batch`, `workers`,
    /// `queue_capacity` ≥ 1) rather than rejected.
    pub fn start(runner: Arc<dyn BatchRunner>, config: SchedulerConfig) -> Self {
        let stats = Arc::new(ServeStats::with_stages(&runner.stage_kinds()));
        Self::start_with_stats(runner, config, stats)
    }

    /// As [`BatchScheduler::start`], recording into an existing stats
    /// store — the registry's hot-reload path passes the retiring
    /// scheduler's store so per-model counters and histograms continue
    /// across the engine swap instead of resetting to zero.
    pub fn start_with_stats(
        runner: Arc<dyn BatchRunner>,
        mut config: SchedulerConfig,
        stats: Arc<ServeStats>,
    ) -> Self {
        config.max_batch = config.max_batch.max(1);
        config.workers = config.workers.max(1);
        config.queue_capacity = config.queue_capacity.max(1);
        let shared = Arc::new(Shared {
            runner,
            config: config.clone(),
            state: Mutex::new(QueueState { queue: VecDeque::new(), shutdown: false }),
            cvar: Condvar::new(),
            stats,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pecan-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // analyze: allow(hot-path-panic) -- one-time worker
                    // spawn at scheduler construction, not the submit path
                    .expect("spawning a scheduler worker")
            })
            .collect();
        Self { shared, workers: Mutex::new(workers) }
    }

    /// The configuration the scheduler runs with (after clamping).
    pub fn config(&self) -> &SchedulerConfig {
        &self.shared.config
    }

    /// Live counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The live stats store itself — histograms included. `/metrics`
    /// reads distributions from here without snapshotting counters it
    /// does not need.
    pub fn serve_stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Enqueues one request, returning a [`Ticket`] to wait on.
    ///
    /// # Errors
    ///
    /// * [`ServeError::BadInput`] — wrong input length (checked here so a
    ///   bad request can never poison a batch);
    /// * [`ServeError::Overloaded`] — queue at capacity;
    /// * [`ServeError::ShuttingDown`] — scheduler is draining.
    pub fn submit(&self, input: Vec<f32>) -> Result<Ticket, ServeError> {
        self.try_submit(input).map_err(|(e, _)| e)
    }

    /// As [`BatchScheduler::submit`], but a rejection hands the input
    /// back with the error — the registry's hot-reload retry resubmits
    /// to the replacement scheduler without ever cloning the payload.
    ///
    /// # Errors
    ///
    /// As for [`BatchScheduler::submit`], paired with the unqueued input.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, input: Vec<f32>) -> Result<Ticket, (ServeError, Vec<f32>)> {
        let want = self.shared.runner.input_len();
        if input.len() != want {
            let e = ServeError::BadInput(format!(
                "request has {} values, engine expects {want}",
                input.len()
            ));
            return Err((e, input));
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut state = lock(&self.shared.state);
            if state.shutdown {
                return Err((ServeError::ShuttingDown, input));
            }
            if state.queue.len() >= self.shared.config.queue_capacity {
                self.shared.stats.record_rejected();
                let e = ServeError::Overloaded {
                    capacity: self.shared.config.queue_capacity,
                };
                return Err((e, input));
            }
            state.queue.push_back(Request {
                input,
                submitted: Instant::now(),
                reply: Reply::Channel(tx),
            });
        }
        self.shared.stats.record_submitted();
        self.shared.cvar.notify_one();
        Ok(Ticket { rx })
    }

    /// Enqueues one request whose answer is delivered by invoking
    /// `complete` on a worker thread — no caller blocks. This is the
    /// completion-wakeup path the event-loop front end uses: the callback
    /// pushes the result onto the loop's completion queue and pokes its
    /// eventfd.
    ///
    /// The callback is called exactly once, with the batch's result or
    /// error; it must not block (it runs on the inference worker).
    ///
    /// # Errors
    ///
    /// As for [`BatchScheduler::submit`]. On error the callback is **not**
    /// invoked — the caller still holds the error synchronously.
    pub fn submit_with(&self, input: Vec<f32>, complete: Complete) -> Result<(), ServeError> {
        self.try_submit_with(input, complete).map_err(|(e, _, _)| e)
    }

    /// As [`BatchScheduler::submit_with`], but a rejection hands both the
    /// input and the callback back with the error, so the caller can
    /// resubmit elsewhere (the hot-reload retry) or invoke the callback
    /// itself.
    ///
    /// # Errors
    ///
    /// As for [`BatchScheduler::submit`], paired with the unqueued input
    /// and the uninvoked callback.
    #[allow(clippy::result_large_err, clippy::type_complexity)]
    pub fn try_submit_with(
        &self,
        input: Vec<f32>,
        complete: Complete,
    ) -> Result<(), (ServeError, Vec<f32>, Complete)> {
        let want = self.shared.runner.input_len();
        if input.len() != want {
            let e = ServeError::BadInput(format!(
                "request has {} values, engine expects {want}",
                input.len()
            ));
            return Err((e, input, complete));
        }
        {
            let mut state = lock(&self.shared.state);
            if state.shutdown {
                return Err((ServeError::ShuttingDown, input, complete));
            }
            if state.queue.len() >= self.shared.config.queue_capacity {
                self.shared.stats.record_rejected();
                let e = ServeError::Overloaded {
                    capacity: self.shared.config.queue_capacity,
                };
                return Err((e, input, complete));
            }
            state.queue.push_back(Request {
                input,
                submitted: Instant::now(),
                reply: Reply::Callback(complete),
            });
        }
        self.shared.stats.record_submitted();
        self.shared.cvar.notify_one();
        Ok(())
    }

    /// Requests currently waiting in the submission queue. Advisory — the
    /// value may be stale by the time the caller acts on it; the HTTP tier
    /// uses it to shed load *before* the hard capacity rejection.
    pub fn queue_len(&self) -> usize {
        lock(&self.shared.state).queue.len()
    }

    /// Convenience: [`BatchScheduler::submit`] + [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// As for [`BatchScheduler::submit`] and [`Ticket::wait`].
    pub fn predict(&self, input: Vec<f32>) -> Result<Prediction, ServeError> {
        self.submit(input)?.wait()
    }

    /// Stops accepting work, drains every queued request, and joins the
    /// workers. Idempotent; called automatically on drop.
    ///
    /// In-flight and queued requests are all answered — a ticket obtained
    /// before `shutdown` never dangles.
    pub fn shutdown(&self) {
        {
            let mut state = lock(&self.shared.state);
            if state.shutdown {
                // Already shut down; workers may be gone. Don't re-join.
                drop(state);
                return;
            }
            state.shutdown = true;
        }
        self.shared.cvar.notify_all();
        let handles = std::mem::take(&mut *lock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Poison-tolerant lock: a panicking worker must not wedge every client.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &Shared) {
    let config = &shared.config;
    loop {
        let mut state = lock(&shared.state);
        // Sleep until there is work or the house is closing.
        while state.queue.is_empty() && !state.shutdown {
            state = shared
                .cvar
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if state.queue.is_empty() {
            // shutdown && empty — the queue is drained, retire.
            return;
        }
        // Micro-batching: linger briefly for stragglers, but never once
        // shutdown is signalled and never when batching is disabled.
        // The formation span covers the linger wait, so queue-gathering
        // time shows up in traces as wall ≫ cpu.
        let form_span = pecan_obs::span("scheduler.form");
        if config.max_batch > 1 && !config.max_wait.is_zero() {
            let deadline = Instant::now() + config.max_wait;
            while state.queue.len() < config.max_batch && !state.shutdown {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, timeout) = shared
                    .cvar
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        // With several workers, a sibling may have drained the queue while
        // this worker lingered with the lock released — nothing to run.
        if state.queue.is_empty() {
            continue;
        }
        let take = state.queue.len().min(config.max_batch);
        let mut batch: Vec<Request> = state.queue.drain(..take).collect();
        let more_waiting = !state.queue.is_empty();
        drop(state);
        drop(form_span);
        if more_waiting {
            // Another worker can start gathering while this one computes.
            shared.cvar.notify_one();
        }

        let started = Instant::now();
        // The queued request owns its payload and never needs it again —
        // move it out instead of cloning on the hot path.
        let inputs: Vec<Vec<f32>> =
            batch.iter_mut().map(|r| std::mem::take(&mut r.input)).collect();
        let batch_id = shared.stats.record_batch(batch.len());
        let _span = pecan_obs::span_with_id("scheduler.batch", batch_id);
        // A panicking runner must not kill the worker: queued requests
        // behind this batch would never be answered and their tickets
        // would hang forever. Contain it and answer the batch with an
        // error instead.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.runner.run_batch_observed(&inputs, Some(shared.stats.as_ref()))
        }))
        .unwrap_or_else(|_| {
            crate::log_error!(
                "serve::scheduler",
                "inference worker panicked",
                batch_id = batch_id,
                batch_size = inputs.len(),
            );
            Err(ServeError::Engine("inference worker panicked".into()))
        });
        match outcome {
            Ok(outputs) => {
                for (req, output) in batch.into_iter().zip(outputs) {
                    let queued = started.duration_since(req.submitted);
                    let total = req.submitted.elapsed();
                    shared
                        .stats
                        .record_completed(queued.as_nanos() as u64, total.as_nanos() as u64);
                    req.reply.send(Ok(Prediction {
                        output,
                        queued,
                        total,
                        batch_size: inputs.len(),
                        batch_id,
                    }));
                }
            }
            Err(e) => {
                crate::log_warn!(
                    "serve::scheduler",
                    "batch failed",
                    batch_id = batch_id,
                    batch_size = inputs.len(),
                    error = e,
                );
                for req in batch {
                    shared.stats.record_failed();
                    req.reply.send(Err(e.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_is_clamped_to_sane_floors() {
        let engine = Arc::new(crate::demo::mlp_engine(2));
        let s = BatchScheduler::start(
            engine,
            SchedulerConfig { max_batch: 0, workers: 0, queue_capacity: 0, ..Default::default() },
        );
        assert_eq!(s.config().max_batch, 1);
        assert_eq!(s.config().workers, 1);
        assert_eq!(s.config().queue_capacity, 1);
        s.shutdown();
        s.shutdown(); // idempotent
    }

    #[test]
    fn submit_rejects_wrong_length_before_queueing() {
        let engine = Arc::new(crate::demo::mlp_engine(2));
        let s = BatchScheduler::start(engine, SchedulerConfig::default());
        assert!(matches!(s.submit(vec![0.0; 3]), Err(ServeError::BadInput(_))));
        assert_eq!(s.stats().submitted, 0);
        s.shutdown();
        assert!(matches!(
            s.submit(vec![0.0; s.shared.runner.input_len()]),
            Err(ServeError::ShuttingDown)
        ));
    }
}

//! Small deterministic demo models for binaries, benches and tests.
//!
//! Serving needs a trained model to exist before it can do anything; these
//! constructors build seeded (untrained but fully structured) PECAN models
//! whose engines exercise every stage kind. Deterministic per seed: the
//! same seed always compiles to a bit-identical engine, which the snapshot
//! and parity tests rely on.

use crate::FrozenEngine;
use pecan_core::{PecanBuilder, PecanLinear, PecanVariant, PqLayerSettings};
use pecan_nn::{models, Relu, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Input width of the [`mlp`] demo model.
pub const MLP_INPUT: usize = 64;
/// Output width of the [`mlp`] demo model.
pub const MLP_OUTPUT: usize = 10;

/// A 64→256→256→10 PECAN-D multi-layer perceptron with ReLU between
/// layers: the serving workhorse. Sub-vector width 8 and 256 prototypes
/// per group put the per-request CAM searches squarely in the regime where
/// the lane-blocked batch scanner outruns one-query-at-a-time scans — the
/// model the `serve_throughput` bench and the `loadgen` ≥2× demonstration
/// run on.
pub fn mlp(seed: u64) -> (Sequential, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let settings = PqLayerSettings::new(256, 8, 0.5);
    let mut net = Sequential::new();
    let dims = [MLP_INPUT, 256, 256, MLP_OUTPUT];
    for (i, pair) in dims.windows(2).enumerate() {
        if i > 0 {
            net.push(Box::new(Relu));
        }
        let layer = PecanLinear::new(
            &mut rng,
            PecanVariant::Distance,
            settings,
            pair[0],
            pair[1],
        )
        .expect("demo MLP settings are valid");
        net.push(Box::new(layer));
    }
    (net, vec![MLP_INPUT])
}

/// [`mlp`] compiled into its frozen engine, named `"mlp"`.
pub fn mlp_engine(seed: u64) -> FrozenEngine {
    let (net, shape) = mlp(seed);
    FrozenEngine::compile(&net, &shape)
        .expect("demo MLP always compiles")
        .with_name("mlp")
}

/// The paper's modified LeNet-5 with every conv/FC replaced by PECAN-D
/// lookup layers, for 28×28 single-channel input — exercises conv, pool
/// and flatten stages.
pub fn lenet(seed: u64) -> (Sequential, Vec<usize>) {
    let mut builder = PecanBuilder::from_seed(seed, PecanVariant::Distance);
    let net = models::lenet5_modified(&mut builder).expect("LeNet always builds");
    (net, vec![1, 28, 28])
}

/// [`lenet`] compiled into its frozen engine, named `"lenet"`.
pub fn lenet_engine(seed: u64) -> FrozenEngine {
    let (net, shape) = lenet(seed);
    FrozenEngine::compile(&net, &shape)
        .expect("demo LeNet always compiles")
        .with_name("lenet")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_engines_are_deterministic_per_seed() {
        let a = mlp_engine(9).snapshot_bytes();
        let b = mlp_engine(9).snapshot_bytes();
        let c = mlp_engine(10).snapshot_bytes();
        assert_eq!(a, b, "same seed, same engine");
        assert_ne!(a, c, "different seed, different engine");
    }

    #[test]
    fn lenet_engine_serves_mnist_shapes() {
        let engine = lenet_engine(4);
        assert_eq!(engine.input_len(), 28 * 28);
        assert_eq!(engine.output_len(), 10);
        let out = engine.predict(&vec![0.1; engine.input_len()]).unwrap();
        assert_eq!(out.len(), 10);
    }
}

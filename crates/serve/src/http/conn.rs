//! Per-connection state machine for the event-loop front end.
//!
//! One [`Conn`] owns a non-blocking socket and moves bytes through four
//! cooperating pieces: a read buffer feeding the incremental
//! [`RequestParser`], a response [`Pipeline`] keeping answers in request
//! order, and a write buffer flushed as far as the socket allows.
//!
//! # Invariants
//!
//! The event loop relies on these; every method preserves them:
//!
//! 1. **Order.** Responses leave the socket in exactly the order their
//!    requests arrived, even when inferences complete out of order: a
//!    response slot is reserved ([`Conn::push_pending`]) at parse time and
//!    only the *ready prefix* of the pipeline is ever moved to the write
//!    buffer ([`Conn::flush_ready`]). HTTP/1.1 pipelining is exactly this
//!    guarantee.
//! 2. **No blocking.** [`Conn::read_some`] and [`Conn::try_write`] only
//!    ever perform non-blocking socket calls; `WouldBlock` is a normal
//!    return, never an error.
//! 3. **Bounded buffering.** The event loop stops parsing (and eventually
//!    stops reading) once `pipeline_len()` reaches the configured cap, so
//!    a client that floods requests without reading responses cannot grow
//!    server-side buffers without bound.
//! 4. **Monotonic teardown.** `close_after_flush` never reverts to
//!    `false`; once set, the connection parses no further requests and
//!    closes as soon as the pipeline and write buffer drain
//!    ([`Conn::drained`]).
//! 5. **Stale completions are inert.** Every connection carries a
//!    generation (`gen`); a completion for a closed (possibly reused)
//!    slot compares generations and is dropped, so a mid-flight
//!    disconnect frees the slot immediately and the late inference result
//!    goes nowhere.

use crate::http::parser::RequestParser;
use crate::stats::ConnTag;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// One slot of the response pipeline.
#[derive(Debug)]
enum Slot {
    /// Inference submitted; holds the request's keep-alive flag for
    /// response encoding at completion time.
    Pending { keep_alive: bool },
    /// Encoded response bytes waiting for their turn on the wire.
    Ready(Vec<u8>),
}

/// Response slots in request order (invariant 1). Sequence numbers are
/// per-connection and strictly increasing; `base` is the sequence of the
/// front slot.
#[derive(Debug, Default)]
pub(crate) struct Pipeline {
    slots: VecDeque<Slot>,
    base: u64,
    next: u64,
}

impl Pipeline {
    /// Total slots (pending + ready) not yet flushed to the write buffer.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Submitted-but-unanswered slots.
    pub fn pending(&self) -> usize {
        self.slots.iter().filter(|s| matches!(s, Slot::Pending { .. })).count()
    }

    /// Reserves the next in-order slot for an in-flight inference and
    /// returns its sequence number.
    pub fn push_pending(&mut self, keep_alive: bool) -> u64 {
        let seq = self.next;
        self.next += 1;
        self.slots.push_back(Slot::Pending { keep_alive });
        seq
    }

    /// Appends an already-encoded response (immediate routes: `/healthz`,
    /// errors, shed 503s) in order.
    pub fn push_ready(&mut self, bytes: Vec<u8>) {
        self.next += 1;
        self.slots.push_back(Slot::Ready(bytes));
    }

    /// The keep-alive flag recorded for a pending slot, or `None` when
    /// the slot is gone or already completed (stale completion).
    pub fn pending_keep_alive(&self, seq: u64) -> Option<bool> {
        match self.slots.get(usize::try_from(seq.checked_sub(self.base)?).ok()?) {
            Some(Slot::Pending { keep_alive }) => Some(*keep_alive),
            _ => None,
        }
    }

    /// Fills a pending slot with its encoded response. Returns `false`
    /// for a stale sequence (slot already flushed or never pending).
    pub fn complete(&mut self, seq: u64, bytes: Vec<u8>) -> bool {
        let Some(offset) = seq.checked_sub(self.base) else { return false };
        match self.slots.get_mut(offset as usize) {
            Some(slot @ Slot::Pending { .. }) => {
                *slot = Slot::Ready(bytes);
                true
            }
            _ => false,
        }
    }

    /// Pops the ready prefix, preserving order past the first still-pending
    /// slot, and appends it to `out`.
    pub fn flush_into(&mut self, out: &mut Vec<u8>) {
        while matches!(self.slots.front(), Some(Slot::Ready(_))) {
            let Some(Slot::Ready(bytes)) = self.slots.pop_front() else { unreachable!() };
            out.extend_from_slice(&bytes);
            self.base += 1;
        }
    }
}

/// One event-loop connection. See the module docs for the invariants.
#[derive(Debug)]
pub(crate) struct Conn {
    /// The non-blocking socket.
    pub stream: TcpStream,
    /// Incremental request parser holding any partial request bytes.
    pub parser: RequestParser,
    /// In-order response slots.
    pub pipeline: Pipeline,
    write_buf: Vec<u8>,
    written: usize,
    /// Generation guarding against slot reuse (invariant 5).
    pub gen: u64,
    /// Last moment the socket made progress (bytes read or written); the
    /// idle/read timeout measures from here.
    pub last_activity: Instant,
    /// Peer sent FIN: no more requests, but pending responses still flush.
    pub read_closed: bool,
    /// Close once drained (invariant 4): `Connection: close`, a parse
    /// error, or server drain set this.
    pub close_after_flush: bool,
    /// A `/shutdown` acknowledgement is in the pipeline; signal the server
    /// once this connection is drained so the client always reads its 200
    /// before teardown begins.
    pub shutdown_after_flush: bool,
    /// The epoll interest mask currently registered for this socket.
    pub registered: u32,
    /// The gauge bucket this connection currently occupies.
    pub tag: ConnTag,
}

impl Conn {
    /// Wraps an accepted socket. The caller has already set it
    /// non-blocking.
    pub fn new(stream: TcpStream, gen: u64, now: Instant, max_head: usize, max_body: usize) -> Self {
        Self {
            stream,
            parser: RequestParser::new(max_head, max_body),
            pipeline: Pipeline::default(),
            write_buf: Vec::new(),
            written: 0,
            gen,
            last_activity: now,
            read_closed: false,
            close_after_flush: false,
            shutdown_after_flush: false,
            registered: 0,
            tag: ConnTag::Reading,
        }
    }

    /// Non-blocking read into `scratch`, feeding the parser. Returns
    /// `Ok(true)` if any bytes arrived, `Ok(false)` on `WouldBlock`/EOF
    /// (EOF additionally sets [`Conn::read_closed`]).
    ///
    /// # Errors
    ///
    /// A hard socket error; the caller closes the connection.
    pub fn read_some(&mut self, scratch: &mut [u8], now: Instant) -> io::Result<bool> {
        let mut any = false;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.read_closed = true;
                    return Ok(any);
                }
                Ok(n) => {
                    self.parser.push(&scratch[..n]);
                    self.last_activity = now;
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(any),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Moves the pipeline's ready prefix into the write buffer.
    pub fn flush_ready(&mut self) {
        self.pipeline.flush_into(&mut self.write_buf);
    }

    /// Non-blocking write of the buffered bytes; stops at `WouldBlock`.
    ///
    /// # Errors
    ///
    /// A hard socket error; the caller closes the connection.
    pub fn try_write(&mut self, now: Instant) -> io::Result<()> {
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.written += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
        } else if self.written > 64 << 10 {
            // Reclaim the flushed prefix of a large backlog.
            self.write_buf.drain(..self.written);
            self.written = 0;
        }
        Ok(())
    }

    /// Unflushed response bytes waiting for the socket.
    pub fn write_backlog(&self) -> usize {
        self.write_buf.len() - self.written
    }

    /// Everything produced so far has left the socket and no response is
    /// outstanding.
    pub fn drained(&self) -> bool {
        self.pipeline.len() == 0 && self.write_backlog() == 0
    }

    /// The gauge bucket this connection belongs to right now
    /// (write backlog > in-flight inference > reading).
    pub fn current_tag(&self) -> ConnTag {
        if self.write_backlog() > 0 {
            ConnTag::Writing
        } else if self.pipeline.pending() > 0 {
            ConnTag::Handling
        } else {
            ConnTag::Reading
        }
    }

    /// The epoll interest mask this connection wants right now
    /// (invariants 2 and 3): reads while open and under the pipeline cap,
    /// writes while a backlog exists, RDHUP always.
    pub fn desired_interest(&self, max_pipeline: usize, draining: bool) -> u32 {
        use crate::http::sys::{EPOLLIN, EPOLLOUT, EPOLLRDHUP};
        let mut mask = EPOLLRDHUP;
        if !self.read_closed
            && !self.close_after_flush
            && !draining
            && self.pipeline.len() < max_pipeline
        {
            mask |= EPOLLIN;
        }
        if self.write_backlog() > 0 {
            mask |= EPOLLOUT;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_preserves_request_order_across_out_of_order_completions() {
        let mut p = Pipeline::default();
        let a = p.push_pending(true);
        let b = p.push_pending(true);
        p.push_ready(b"C".to_vec());
        assert_eq!(p.len(), 3);
        assert_eq!(p.pending(), 2);

        // B completes before A: nothing may flush yet.
        assert!(p.complete(b, b"B".to_vec()));
        let mut out = Vec::new();
        p.flush_into(&mut out);
        assert!(out.is_empty(), "front still pending");

        assert!(p.complete(a, b"A".to_vec()));
        p.flush_into(&mut out);
        assert_eq!(out, b"ABC", "responses leave in request order");
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn stale_and_double_completions_are_rejected() {
        let mut p = Pipeline::default();
        let a = p.push_pending(false);
        assert_eq!(p.pending_keep_alive(a), Some(false));
        assert!(p.complete(a, b"A".to_vec()));
        assert!(!p.complete(a, b"again".to_vec()), "double completion is inert");
        assert_eq!(p.pending_keep_alive(a), None);

        let mut out = Vec::new();
        p.flush_into(&mut out);
        assert!(!p.complete(a, b"late".to_vec()), "flushed slot is stale");
        assert_eq!(p.pending_keep_alive(999), None);
        assert_eq!(out, b"A");
    }
}

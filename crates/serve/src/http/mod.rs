//! Std-only HTTP/1.1 front end over [`std::net::TcpListener`].
//!
//! The environment is offline, so the server is hand-rolled on the
//! standard library: no TLS, no chunked encoding — exactly enough protocol
//! for serving and load-generation. Two interchangeable front ends share
//! one incremental [`parser`], one response encoder and one router, so
//! their responses are byte-identical:
//!
//! * **Threaded** ([`threaded`], the portable default): blocking accept
//!   loop, one handler thread per connection.
//! * **Event loop** ([`event_loop`], Linux `x86_64`/`aarch64`, opt in via
//!   [`ServerConfig::event_loop`]): a single epoll-driven thread
//!   multiplexing thousands of non-blocking sockets, with completion
//!   wakeups from the scheduler. See
//!   [`event_loop_supported`] and the README's "Event-loop front end"
//!   section.
//!
//! # Endpoints
//!
//! | route | method | body | answer |
//! |---|---|---|---|
//! | `/predict` | POST | JSON array of `input_len` floats | `{"output":[…],"latency_us":n,"batch_size":n}` |
//! | `/models/{name}/predict` | POST | as above | as above, for the named model |
//! | `/healthz` | GET | — | `{"status":"ok","model":…,"input_len":n,"output_len":n,"models":[…]}` |
//! | `/models/{name}/healthz` | GET | — | the named model's contract |
//! | `/stats` | GET | — | `{"default":…,"connections":{…},"models":{name: counters, …}}` |
//! | `/models/{name}/stats` | GET | — | the named model's flat counters |
//! | `/metrics` | GET | — | Prometheus text exposition: counters, gauges, latency/batch/stage histograms |
//! | `/debug/requests` | GET | — | flight recorder dump: the newest completed request spans |
//! | `/debug/trace?ms=N` | GET | — | records span tracing for `N` ms (default 200, max 10000), answers Chrome trace-event JSON (`docs/observability.md`) |
//! | `/reload` | POST | — | blue/green reload of the default model from its snapshot file |
//! | `/models/{name}/reload` | POST | — | reload the named model; `{"status":"reloaded","model":…,"version":n}` |
//! | `/shutdown` | POST | — | acknowledges, then the server drains and stops |
//!
//! The bare routes serve the registry's **default** model, so single-model
//! deployments and old clients keep working unchanged. An unknown model
//! name answers `404` with `{"error":"unknown model …"}`. Backpressure
//! surfaces as `503` with `{"error":"overloaded…"}` and a `Retry-After`
//! header — either from load-aware shedding
//! ([`ServerConfig::shed_fraction`], counted in
//! [`ConnStatsSnapshot::shed_requests`](crate::ConnStatsSnapshot)) or from
//! the scheduler's hard queue bound. Malformed requests answer `400`.

pub mod parser;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod conn;
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod event_loop;
// The one place in the workspace where `unsafe` is allowed: raw syscalls.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
#[allow(unsafe_code)]
pub(crate) mod sys;
mod threaded;

use crate::error::ServeError;
use crate::json;
use crate::obs::metrics::{PromKind, PromText};
use crate::obs::recorder::NO_MODEL;
use crate::obs::{FlightRecorder, TraceRecord};
use crate::registry::EngineRegistry;
use crate::scheduler::{Prediction, SchedulerConfig};
use crate::stats::{ConnStats, ConnStatsSnapshot, StatsSnapshot};
use crate::FrozenEngine;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// `true` when this build carries the epoll event-loop front end
/// (Linux on `x86_64` or `aarch64`). Everywhere else
/// [`ServerConfig::event_loop`] silently falls back to the portable
/// threaded front end; [`Server::uses_event_loop`] reports what actually
/// runs.
pub fn event_loop_supported() -> bool {
    cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))
}

/// Front-end tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port `0` for an ephemeral port (the bound address
    /// is reported by [`Server::local_addr`]).
    pub addr: String,
    /// Scheduler configuration used when [`Server::start`] wraps a single
    /// engine into a one-model registry. Ignored by
    /// [`Server::start_registry`] (each registered model already carries
    /// its scheduler).
    pub scheduler: SchedulerConfig,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Per-connection idle/read timeout. The threaded front end applies it
    /// as a socket read timeout; the event loop closes connections whose
    /// socket made no progress for this long (mid-request: best-effort
    /// `408` first) and uses it as the graceful-drain deadline.
    pub read_timeout: Duration,
    /// Serve through the epoll event loop instead of
    /// thread-per-connection. Ignored (threaded fallback) where
    /// [`event_loop_supported`] is `false`.
    pub event_loop: bool,
    /// Most connections held open at once; further accepts are answered
    /// `503` and closed (counted in
    /// [`ConnStatsSnapshot::shed_connections`]).
    pub max_connections: usize,
    /// Most pipelined requests one connection may have unanswered before
    /// the event loop stops reading from it (bounded buffering; the
    /// threaded front end is naturally bounded at 1).
    pub max_pipeline: usize,
    /// Fraction of a model's scheduler queue capacity at which `/predict`
    /// starts answering `503` **before** the hard queue rejection
    /// (load-aware shedding, counted in
    /// [`ConnStatsSnapshot::shed_requests`]). Values ≥ 1 disable shedding,
    /// leaving only the scheduler's own bound.
    pub shed_fraction: f64,
    /// Capacity of the flight recorder: how many of the newest completed
    /// requests `/debug/requests` can replay.
    pub flight_records: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig::default(),
            max_body: 1 << 20,
            read_timeout: Duration::from_secs(30),
            event_loop: false,
            max_connections: 1024,
            max_pipeline: 32,
            shed_fraction: 0.9,
            flight_records: 256,
        }
    }
}

pub(crate) struct HttpShared {
    pub(crate) registry: Arc<EngineRegistry>,
    pub(crate) max_body: usize,
    pub(crate) read_timeout: Duration,
    pub(crate) max_connections: usize,
    pub(crate) max_pipeline: usize,
    pub(crate) shed_fraction: f64,
    pub(crate) stopping: AtomicBool,
    pub(crate) shutdown_tx: mpsc::Sender<()>,
    pub(crate) conn_stats: ConnStats,
    pub(crate) recorder: FlightRecorder,
    /// Request-ID mint: IDs are assigned at parse time, 1-based, unique
    /// per server across both front ends.
    next_request_id: AtomicU64,
    /// Connection-generation mint shared by both front ends, so a trace's
    /// `conn_gen` is unique server-wide.
    next_conn_gen: AtomicU64,
}

impl HttpShared {
    /// Mints the next request ID (1-based).
    pub(crate) fn mint_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Mints the next connection generation (1-based).
    pub(crate) fn mint_conn_gen(&self) -> u64 {
        self.next_conn_gen.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Writes one completed-request span into the flight recorder.
    /// `prediction` carries the queue/batch legs for requests that
    /// reached a scheduler; pass `None` for everything else (admin
    /// routes, parse/validation errors, shed requests).
    pub(crate) fn trace_request(
        &self,
        id: u64,
        conn_gen: u64,
        model: Option<usize>,
        status: u16,
        prediction: Option<&Prediction>,
    ) {
        let p = prediction;
        self.recorder.record(&TraceRecord {
            id,
            conn_gen,
            model: model.map_or(NO_MODEL, |m| m as u64),
            status: u64::from(status),
            batch_id: p.map_or(0, |p| p.batch_id),
            batch_size: p.map_or(0, |p| p.batch_size as u64),
            queue_us: p.map_or(0, |p| p.queued.as_micros() as u64),
            infer_us: p.map_or(0, |p| p.total.saturating_sub(p.queued).as_micros() as u64),
            total_us: p.map_or(0, |p| p.total.as_micros() as u64),
            t_us: self.recorder.now_us(),
        });
        crate::log_trace!(
            "serve::http",
            "request completed",
            id = id,
            conn_gen = conn_gen,
            status = status,
            total_us = p.map_or(0, |p| p.total.as_micros()),
        );
    }
}

/// The running front end behind a [`Server`].
enum FrontEnd {
    /// Thread-per-connection accept loop.
    Threaded(JoinHandle<()>),
    /// Single epoll-driven loop thread.
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Event(event_loop::EventLoopHandle),
}

/// A running serving endpoint: front end + per-model schedulers + frozen
/// engines.
///
/// Construct with [`Server::start`] (one model) or
/// [`Server::start_registry`] (multi-model); stop gracefully with
/// [`Server::stop`] (drains all queued requests) or let a client
/// `POST /shutdown` and wait for that with [`Server::run`].
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<HttpShared>,
    front: Mutex<Option<FrontEnd>>,
    shutdown_rx: Mutex<mpsc::Receiver<()>>,
    event_loop: bool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("event_loop", &self.event_loop)
            .finish()
    }
}

impl Server {
    /// Single-model convenience: wraps `engine` into a one-model registry
    /// (named after [`FrozenEngine::name`], `"default"` when unnamed) and
    /// serves it.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the address cannot be bound.
    pub fn start(engine: Arc<FrozenEngine>, config: ServerConfig) -> io::Result<Server> {
        let registry = EngineRegistry::new();
        registry
            .register(engine, config.scheduler.clone())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        Self::start_registry(registry, config)
    }

    /// Binds, adopts the registry's per-model schedulers, spawns the
    /// configured front end, and starts answering on every model's routes.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the registry is empty or the address cannot be
    /// bound.
    pub fn start_registry(registry: EngineRegistry, config: ServerConfig) -> io::Result<Server> {
        Self::start_shared(Arc::new(registry), config)
    }

    /// As [`Server::start_registry`], but over an externally shared
    /// registry, so other components — the directory watcher, operator
    /// tooling — can keep registering and reloading models **while the
    /// server runs**. The registry's interior mutability makes this safe;
    /// models added after start are routable immediately.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the registry is empty or the address cannot be
    /// bound.
    pub fn start_shared(registry: Arc<EngineRegistry>, config: ServerConfig) -> io::Result<Server> {
        if registry.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot serve an empty model registry",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let (shutdown_tx, shutdown_rx) = mpsc::channel();
        let shared = Arc::new(HttpShared {
            registry,
            max_body: config.max_body,
            read_timeout: config.read_timeout,
            max_connections: config.max_connections.max(1),
            max_pipeline: config.max_pipeline.max(1),
            shed_fraction: config.shed_fraction,
            stopping: AtomicBool::new(false),
            shutdown_tx,
            conn_stats: ConnStats::new(),
            recorder: FlightRecorder::new(config.flight_records),
            next_request_id: AtomicU64::new(0),
            next_conn_gen: AtomicU64::new(0),
        });
        let use_event = config.event_loop && event_loop_supported();
        let front = if use_event {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                FrontEnd::Event(event_loop::start(listener, Arc::clone(&shared))?)
            }
            #[cfg(not(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            {
                unreachable!("event_loop_supported() gated this branch")
            }
        } else {
            let accept_shared = Arc::clone(&shared);
            FrontEnd::Threaded(
                std::thread::Builder::new()
                    .name("pecan-serve-accept".into())
                    .spawn(move || threaded::accept_loop(&listener, &accept_shared))
                    .expect("spawning the accept loop"),
            )
        };
        crate::log_info!(
            "serve::http",
            "listening",
            addr = local_addr,
            front_end = if use_event { "event-loop" } else { "threaded" },
            models = shared.registry.entries().len(),
        );
        Ok(Server {
            local_addr,
            shared,
            front: Mutex::new(Some(front)),
            shutdown_rx: Mutex::new(shutdown_rx),
            event_loop: use_event,
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// `true` when requests are served by the epoll event loop rather than
    /// thread-per-connection.
    pub fn uses_event_loop(&self) -> bool {
        self.event_loop
    }

    /// Live counters of the default model's scheduler.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.registry.default_model().stats()
    }

    /// Live connection-tier counters of the front end.
    pub fn conn_stats(&self) -> ConnStatsSnapshot {
        self.shared.conn_stats.snapshot()
    }

    /// The served models.
    pub fn registry(&self) -> &EngineRegistry {
        &self.shared.registry
    }

    /// Blocks until a client requests `POST /shutdown`, then stops
    /// gracefully. Used by the `serve` binary.
    pub fn run(self) {
        // A send error means the sender (shared state) is gone, which only
        // happens at teardown — either way, proceed to stop.
        let _ = lock(&self.shutdown_rx).recv();
        self.stop();
    }

    /// Graceful stop: refuse new connections, answer everything already
    /// in flight, drain every queued request of every model, join the
    /// front end and scheduler workers. Idempotent.
    pub fn stop(&self) {
        // ordering: Relaxed — the swap's atomicity alone makes stop
        // idempotent (exactly one caller sees `false`). Front ends don't
        // learn of the flag through memory ordering but through the
        // wakeups below (connect-poke / eventfd), each of which
        // synchronizes through the kernel.
        if self.shared.stopping.swap(true, Ordering::Relaxed) {
            return;
        }
        crate::log_info!("serve::http", "stopping", addr = self.local_addr);
        match lock(&self.front).take() {
            Some(FrontEnd::Threaded(handle)) => {
                // The accept loop blocks in `accept`; poke it so it
                // observes the flag. Failure is fine — it means the
                // listener is already gone.
                let _ = TcpStream::connect(self.local_addr);
                let _ = handle.join();
            }
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Some(FrontEnd::Event(handle)) => handle.stop(),
            None => {}
        }
        self.shared.registry.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Splits `/models/{name}/rest` into `(Some(name), "/rest")`; any other
/// target passes through as `(None, target)`.
fn split_model(target: &str) -> (Option<&str>, &str) {
    if let Some(tail) = target.strip_prefix("/models/") {
        if let Some(slash) = tail.find('/') {
            return (Some(&tail[..slash]), &tail[slash..]);
        }
    }
    (None, target)
}

/// `Content-Type` of every JSON response.
pub(crate) const CT_JSON: &str = "application/json";
/// `Content-Type` of the `/metrics` Prometheus text exposition.
pub(crate) const CT_PROM: &str = "text/plain; version=0.0.4";

/// Where one routed request goes next.
pub(crate) enum Routed {
    /// Fully answered without inference.
    Done {
        status: u16,
        body: String,
        /// `Content-Type` of the response ([`CT_JSON`] for everything
        /// except `/metrics`).
        content_type: &'static str,
        /// Signal server shutdown once the response has left the socket.
        shutdown: bool,
    },
    /// Needs inference: submit `input` to the scheduler of registry entry
    /// `idx` (an index, not a borrow, so the event loop can carry it
    /// through an asynchronous completion).
    Predict { idx: usize, input: Vec<f32> },
    /// `GET /debug/trace`: record a span-trace window of `ms` milliseconds,
    /// then answer with Chrome trace JSON. The capture *blocks* for the
    /// window, so the threaded front end runs it on the handler thread but
    /// the event loop must delegate to a helper thread — its loop thread
    /// can never sleep.
    TraceCapture { ms: u64 },
}

impl Routed {
    fn done(status: u16, body: String) -> Self {
        Routed::Done { status, body, content_type: CT_JSON, shutdown: false }
    }
}

/// Routes one parsed request. Shared verbatim by both front ends — this
/// function is why their responses are byte-identical.
pub(crate) fn route_request(shared: &HttpShared, request: &parser::Request) -> Routed {
    let (model, path) = split_model(&request.target);
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let (status, body) = healthz(shared, model);
            Routed::done(status, body)
        }
        ("GET", "/stats") => {
            let (status, body) = stats(shared, model);
            Routed::done(status, body)
        }
        // Observability is server-wide: bare routes only.
        ("GET", "/metrics") if model.is_none() => Routed::Done {
            status: 200,
            body: metrics(shared),
            content_type: CT_PROM,
            shutdown: false,
        },
        ("GET", "/debug/requests") if model.is_none() => {
            Routed::done(200, debug_requests(shared))
        }
        ("GET", p)
            if model.is_none()
                && (p == "/debug/trace" || p.starts_with("/debug/trace?")) =>
        {
            match parse_trace_ms(p.strip_prefix("/debug/trace").unwrap_or_default()) {
                Ok(ms) => Routed::TraceCapture { ms },
                Err(e) => {
                    Routed::done(400, format!("{{\"error\":\"{}\"}}", json::escape(&e)))
                }
            }
        }
        ("POST", "/predict") => predict_route(shared, model, &request.body),
        ("POST", "/reload") => {
            let (status, body) = reload_route(shared, model);
            Routed::done(status, body)
        }
        // Shutdown is server-wide: only the bare route exists.
        ("POST", "/shutdown") if model.is_none() => Routed::Done {
            status: 200,
            body: "{\"status\":\"shutting down\"}".into(),
            content_type: CT_JSON,
            shutdown: true,
        },
        ("GET" | "POST", _) => Routed::done(404, "{\"error\":\"no such route\"}".into()),
        _ => Routed::done(405, "{\"error\":\"method not allowed\"}".into()),
    }
}

pub(crate) fn error_response(e: &ServeError) -> (u16, String) {
    let status = match e {
        ServeError::BadInput(_) => 400,
        ServeError::UnknownModel(_) => 404,
        ServeError::Overloaded { .. } | ServeError::ShuttingDown => 503,
        _ => 500,
    };
    (status, format!("{{\"error\":\"{}\"}}", json::escape(&e.to_string())))
}

fn healthz(shared: &HttpShared, model: Option<&str>) -> (u16, String) {
    let entry = match shared.registry.resolve(model) {
        Ok(e) => e,
        Err(e) => return error_response(&e),
    };
    let models: Vec<String> = shared
        .registry
        .names()
        .iter()
        .map(|n| format!("\"{}\"", json::escape(n)))
        .collect();
    (
        200,
        format!(
            "{{\"status\":\"ok\",\"model\":\"{}\",\"input_len\":{},\"output_len\":{},\"models\":[{}]}}",
            json::escape(entry.name()),
            entry.runner().input_len(),
            entry.runner().output_len(),
            models.join(",")
        ),
    )
}

fn stats(shared: &HttpShared, model: Option<&str>) -> (u16, String) {
    match model {
        // Bare /stats: connection-tier counters plus every model's
        // scheduler counters, keyed by name.
        None => {
            let mut out = String::from("{\"default\":\"");
            out.push_str(&json::escape(shared.registry.default_model().name()));
            out.push_str("\",\"connections\":");
            out.push_str(&shared.conn_stats.snapshot().to_json());
            out.push_str(",\"models\":{");
            for (i, e) in shared.registry.entries().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json::escape(e.name()));
                out.push_str("\":");
                out.push_str(&e.stats().to_json());
            }
            out.push_str("}}");
            (200, out)
        }
        Some(_) => match shared.registry.resolve(model) {
            Ok(entry) => (200, entry.stats().to_json()),
            Err(e) => error_response(&e),
        },
    }
}

/// `POST /reload` and `POST /models/{name}/reload`: blue/green swap of one
/// model from its recorded snapshot source. Answers only once the new
/// engine is serving (or with the typed error that left the old one
/// serving untouched): `400` for a model with no file source, `404` for an
/// unknown name, `500` when the file no longer loads.
fn reload_route(shared: &HttpShared, model: Option<&str>) -> (u16, String) {
    match shared.registry.reload(model) {
        Ok((entry, version)) => {
            crate::log_info!(
                "serve::http",
                "model reloaded",
                model = entry.name(),
                version = version,
            );
            (
                200,
                format!(
                    "{{\"status\":\"reloaded\",\"model\":\"{}\",\"version\":{version}}}",
                    json::escape(entry.name())
                ),
            )
        }
        Err(e) => error_response(&e),
    }
}

/// Renders every counter, gauge and distribution as one Prometheus text
/// exposition page: per-model request counters and latency/batch-size
/// histograms (with p50/p90/p99/p999 gauges derived from them),
/// per-stage wall-time histograms, and the connection-tier counters.
/// Served by `GET /metrics` on both front ends.
fn metrics(shared: &HttpShared) -> String {
    let entries = shared.registry.entries();
    let models: Vec<(&str, &crate::ServeStats, StatsSnapshot)> = entries
        .iter()
        .map(|e| (e.name(), e.serve_stats(), e.stats()))
        .collect();
    let mut page = PromText::new();

    let counter = |page: &mut PromText, name: &str, help: &str, f: &dyn Fn(&StatsSnapshot) -> u64| {
        page.family(name, PromKind::Counter, help);
        for (model, _, snap) in &models {
            page.sample(name, &[("model", model)], f(snap) as f64);
        }
    };
    counter(&mut page, "pecan_requests_submitted_total", "Requests accepted into a scheduler queue.", &|s| s.submitted);
    counter(&mut page, "pecan_requests_completed_total", "Requests answered successfully.", &|s| s.completed);
    counter(&mut page, "pecan_requests_rejected_total", "Requests refused by backpressure.", &|s| s.rejected);
    counter(&mut page, "pecan_requests_failed_total", "Requests answered with an engine error.", &|s| s.failed);
    counter(&mut page, "pecan_batches_total", "Batches executed.", &|s| s.batches);

    page.family("pecan_queue_depth", PromKind::Gauge, "Requests waiting in the scheduler queue.");
    for (i, (model, _, _)) in models.iter().enumerate() {
        page.sample("pecan_queue_depth", &[("model", model)], entries[i].queue_len() as f64);
    }

    let latency_family =
        |page: &mut PromText, name: &str, help: &str, f: &dyn Fn(&crate::ServeStats) -> &crate::Histogram| {
            page.family(name, PromKind::Histogram, help);
            for (model, stats, _) in &models {
                page.histogram(name, &[("model", model)], &f(stats).snapshot(), 1e-9);
            }
        };
    latency_family(&mut page, "pecan_request_latency_seconds", "Submit-to-answer latency.", &|s| s.latency_histogram());
    latency_family(&mut page, "pecan_queue_latency_seconds", "Time spent queued before the batch started.", &|s| s.queue_histogram());
    latency_family(&mut page, "pecan_infer_latency_seconds", "Batch-start-to-answer (inference + dispatch) latency.", &|s| s.infer_histogram());

    page.family("pecan_batch_size", PromKind::Histogram, "Requests per executed batch.");
    for (model, stats, _) in &models {
        page.histogram("pecan_batch_size", &[("model", model)], &stats.batch_size_histogram().snapshot(), 1.0);
    }

    page.family(
        "pecan_request_latency_quantile_seconds",
        PromKind::Gauge,
        "Latency quantiles precomputed from pecan_request_latency_seconds (upper bounds).",
    );
    for (model, stats, _) in &models {
        let snap = stats.latency_histogram().snapshot();
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)] {
            page.sample(
                "pecan_request_latency_quantile_seconds",
                &[("model", model), ("quantile", label)],
                snap.quantile(q) as f64 * 1e-9,
            );
        }
    }

    page.family("pecan_stage_latency_seconds", PromKind::Histogram, "Per-batch wall time by pipeline stage kind.");
    for (model, stats, _) in &models {
        for (stage, hist) in stats.stage_histograms() {
            page.histogram(
                "pecan_stage_latency_seconds",
                &[("model", model), ("stage", stage)],
                &hist.snapshot(),
                1e-9,
            );
        }
    }

    let conn = shared.conn_stats.snapshot();
    let conn_metric = |page: &mut PromText, name: &str, kind: PromKind, help: &str, v: u64| {
        page.family(name, kind, help);
        page.sample(name, &[], v as f64);
    };
    conn_metric(&mut page, "pecan_connections_accepted_total", PromKind::Counter, "Connections admitted past the cap check.", conn.accepted);
    conn_metric(&mut page, "pecan_connections_closed_total", PromKind::Counter, "Connections fully torn down.", conn.closed);
    conn_metric(&mut page, "pecan_connections_active", PromKind::Gauge, "Connections currently open.", conn.active);
    page.family("pecan_connections_state", PromKind::Gauge, "Open connections by front-end state.");
    for (state, v) in [("reading", conn.reading), ("handling", conn.handling), ("writing", conn.writing)] {
        page.sample("pecan_connections_state", &[("state", state)], v as f64);
    }
    conn_metric(&mut page, "pecan_http_requests_total", PromKind::Counter, "Requests parsed off sockets.", conn.requests);
    conn_metric(&mut page, "pecan_http_responses_total", PromKind::Counter, "Responses handed to sockets.", conn.responses);
    conn_metric(&mut page, "pecan_inflight_requests", PromKind::Gauge, "Requests submitted to a scheduler and not yet answered.", conn.inflight);
    conn_metric(&mut page, "pecan_timeouts_total", PromKind::Counter, "Connections closed by the idle/read timeout.", conn.timeouts);
    conn_metric(&mut page, "pecan_shed_connections_total", PromKind::Counter, "Connections refused at the connection cap.", conn.shed_connections);
    conn_metric(&mut page, "pecan_shed_requests_total", PromKind::Counter, "Requests refused by load-aware shedding.", conn.shed_requests);
    conn_metric(&mut page, "pecan_flight_records_total", PromKind::Counter, "Request spans written to the flight recorder.", shared.recorder.recorded());

    page.finish()
}

/// Renders the flight recorder's newest spans as JSON for
/// `GET /debug/requests`: who (request ID, connection generation, model),
/// what (status, batch ID and size) and how long each leg took.
fn debug_requests(shared: &HttpShared) -> String {
    let entries = shared.registry.entries();
    let mut out = format!(
        "{{\"capacity\":{},\"recorded\":{},\"requests\":[",
        shared.recorder.capacity(),
        shared.recorder.recorded()
    );
    for (i, r) in shared.recorder.dump().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let model = entries
            .get(r.model as usize)
            .map_or("null".to_string(), |e| format!("\"{}\"", json::escape(e.name())));
        out.push_str(&format!(
            "{{\"id\":{},\"conn_gen\":{},\"model\":{model},\"status\":{},\
             \"batch_id\":{},\"batch_size\":{},\"queue_us\":{},\"infer_us\":{},\
             \"total_us\":{},\"t_us\":{}}}",
            r.id, r.conn_gen, r.status, r.batch_id, r.batch_size, r.queue_us, r.infer_us,
            r.total_us, r.t_us,
        ));
    }
    out.push_str("]}");
    out
}

/// Longest accepted `/debug/trace` capture window: the capture ties down
/// a thread (threaded front end: the connection's handler; event loop: a
/// helper) for the whole window, so it is bounded well under any
/// plausible read timeout.
const TRACE_MS_MAX: u64 = 10_000;
/// `/debug/trace` window when `?ms=` is absent.
const TRACE_MS_DEFAULT: u64 = 200;

/// Parses the `?ms=N` query of `/debug/trace` (input: `""`, `"?..."`).
/// Absent `ms` falls back to [`TRACE_MS_DEFAULT`].
fn parse_trace_ms(query: &str) -> Result<u64, String> {
    for kv in query.trim_start_matches('?').split('&') {
        if let Some(v) = kv.strip_prefix("ms=") {
            return v
                .parse::<u64>()
                .ok()
                .filter(|&ms| (1..=TRACE_MS_MAX).contains(&ms))
                .ok_or_else(|| format!("ms must be an integer in [1, {TRACE_MS_MAX}]"));
        }
    }
    Ok(TRACE_MS_DEFAULT)
}

/// The queue depth at which load-aware shedding starts for a scheduler of
/// `capacity`. At least 1 so a capacity-1 queue still sheds instead of
/// hard-rejecting; ≥ `capacity` (fraction ≥ 1) disables shedding.
fn shed_threshold(capacity: usize, fraction: f64) -> usize {
    ((capacity as f64 * fraction) as usize).max(1)
}

fn predict_route(shared: &HttpShared, model: Option<&str>, body: &[u8]) -> Routed {
    let idx = match shared.registry.resolve_index(model) {
        Ok(i) => i,
        Err(e) => {
            let (status, body) = error_response(&e);
            return Routed::done(status, body);
        }
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return Routed::done(400, "{\"error\":\"body is not UTF-8\"}".into());
    };
    let input = match json::parse_f32_array(text) {
        Ok(v) => v,
        Err(e) => {
            return Routed::done(400, format!("{{\"error\":\"{}\"}}", json::escape(&e)));
        }
    };
    // Load-aware shedding: refuse *before* the scheduler's hard queue
    // bound so the reject is cheap and the queue keeps headroom for
    // requests already past routing.
    let entry = shared.registry.entry(idx);
    let capacity = entry.config().queue_capacity;
    if entry.queue_len() >= shed_threshold(capacity, shared.shed_fraction) {
        shared.conn_stats.record_shed_request();
        let (status, body) = error_response(&ServeError::Overloaded { capacity });
        return Routed::done(status, body);
    }
    Routed::Predict { idx, input }
}

/// Renders one successful prediction exactly as the HTTP API promises.
pub(crate) fn prediction_body(p: &Prediction) -> String {
    format!(
        "{{\"output\":{},\"latency_us\":{},\"batch_size\":{}}}",
        json::format_f32_array(&p.output),
        p.total.as_micros(),
        p.batch_size
    )
}

/// `(status, body)` for a finished inference, success or failure.
pub(crate) fn prediction_parts(result: &Result<Prediction, ServeError>) -> (u16, String) {
    match result {
        Ok(p) => (200, prediction_body(p)),
        Err(e) => error_response(e),
    }
}

pub(crate) fn error_body(status: u16) -> String {
    format!("{{\"error\":\"{}\"}}", reason(status))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Encodes one complete JSON response — [`encode_response_with`] fixed
/// to [`CT_JSON`], which every route except `/metrics` uses.
pub(crate) fn encode_response(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    encode_response_with(status, CT_JSON, body, keep_alive)
}

/// Encodes one complete response. Both front ends emit responses through
/// this function only, which is what makes them byte-identical on the
/// wire. Every `503` carries `Retry-After: 1` — shed or hard-rejected,
/// the client's correct move is the same.
pub(crate) fn encode_response_with(
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> Vec<u8> {
    let retry = if status == 503 { "Retry-After: 1\r\n" } else { "" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{retry}Connection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_prefix_splitting() {
        assert_eq!(split_model("/predict"), (None, "/predict"));
        assert_eq!(split_model("/models/mlp/predict"), (Some("mlp"), "/predict"));
        assert_eq!(split_model("/models/a-b.c/healthz"), (Some("a-b.c"), "/healthz"));
        // no inner slash → not a model route, falls through to 404
        assert_eq!(split_model("/models/mlp"), (None, "/models/mlp"));
    }

    #[test]
    fn reasons_cover_used_statuses() {
        for s in [200, 400, 404, 405, 408, 413, 431, 500, 503] {
            assert_ne!(reason(s), "Unknown");
        }
    }

    #[test]
    fn trace_ms_parsing_defaults_and_bounds() {
        assert_eq!(parse_trace_ms(""), Ok(TRACE_MS_DEFAULT));
        assert_eq!(parse_trace_ms("?"), Ok(TRACE_MS_DEFAULT));
        assert_eq!(parse_trace_ms("?ms=50"), Ok(50));
        assert_eq!(parse_trace_ms("?foo=1&ms=250"), Ok(250));
        assert_eq!(parse_trace_ms("?foo=1"), Ok(TRACE_MS_DEFAULT));
        assert!(parse_trace_ms("?ms=0").is_err());
        assert!(parse_trace_ms("?ms=99999").is_err());
        assert!(parse_trace_ms("?ms=abc").is_err());
    }

    #[test]
    fn shed_threshold_floors_and_disables() {
        assert_eq!(shed_threshold(256, 0.9), 230);
        assert_eq!(shed_threshold(1, 0.9), 1, "capacity-1 queues still shed");
        assert!(shed_threshold(8, 1.0) >= 8, "fraction 1 leaves only the hard bound");
    }

    #[test]
    fn encode_response_framing_and_retry_after() {
        let ok = encode_response(200, "{}", true);
        let text = String::from_utf8(ok).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Retry-After"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let shed = String::from_utf8(encode_response(503, "{}", false)).unwrap();
        assert!(shed.contains("Retry-After: 1\r\n"));
        assert!(shed.contains("Connection: close\r\n"));
    }
}

//! Tiny vendored epoll/eventfd sys layer: raw Linux syscalls, no libc.
//!
//! The build environment is offline (see `shims/README.md` for the same
//! situation on the crates.io side), so readiness notification is wired
//! straight to the kernel with `asm!`-issued syscalls — exactly the four
//! primitives the event loop needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_pwait`, `eventfd2`) plus `read`/`write`/`close` on the eventfd.
//! Supported on `x86_64` and `aarch64` Linux; everything else serves
//! through the portable threaded front end (see
//! [`event_loop_supported`](crate::event_loop_supported)).
//!
//! This is one of the audited unsafe islands `pecan-analyze` fences
//! (`unsafe_code = "deny"` crate-wide, allowed on the `mod sys` item;
//! see `docs/static-analysis.md`): the unsafety is confined to issuing
//! syscalls whose arguments are either plain integers or pointers
//! derived from live Rust references.

use std::io;
use std::os::fd::RawFd;

/// Readiness: fd has bytes to read.
pub const EPOLLIN: u32 = 0x001;
/// Readiness: fd accepts writes without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never needs registering).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never needs registering).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;
const EFD_CLOEXEC: usize = 0x80000;
const EAGAIN: i32 = 11;
const EINTR: i32 = 4;

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const MMAP: usize = 9;
    pub const MUNMAP: usize = 11;
    pub const MADVISE: usize = 28;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const MMAP: usize = 222;
    pub const MUNMAP: usize = 215;
    pub const MADVISE: usize = 233;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

/// Issues one raw syscall. Negative returns are `-errno`.
///
/// SAFETY: the caller must pass arguments valid for the specific
/// syscall — every call site in this module passes integers, or
/// pointers/lengths derived from live references that the kernel only
/// accesses for the duration of the call.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall(n: usize, args: [usize; 6]) -> isize {
    let ret: isize;
    // SAFETY: the operand list is the x86_64 Linux syscall ABI (number in
    // rax, args in rdi/rsi/rdx/r10/r8/r9, rcx/r11 clobbered); argument
    // validity is the caller's contract above.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") args[0],
            in("rsi") args[1],
            in("rdx") args[2],
            in("r10") args[3],
            in("r8") args[4],
            in("r9") args[5],
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    ret
}

/// SAFETY: same caller contract as the `x86_64` twin above.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall(n: usize, args: [usize; 6]) -> isize {
    let ret: isize;
    // SAFETY: the operand list is the aarch64 Linux syscall ABI (number
    // in x8, args in x0..x5, return in x0); argument validity is the
    // caller's contract.
    unsafe {
        std::arch::asm!(
            "svc 0",
            inlateout("x0") args[0] as isize => ret,
            in("x1") args[1],
            in("x2") args[2],
            in("x3") args[3],
            in("x4") args[4],
            in("x5") args[5],
            in("x8") n,
            options(nostack),
        );
    }
    ret
}

fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

fn close_fd(fd: RawFd) {
    // Errors on close are unrecoverable and the fd is gone either way.
    // SAFETY: integer arguments only.
    let _ = unsafe { syscall(nr::CLOSE, [fd as usize, 0, 0, 0, 0, 0]) };
}

/// One `struct epoll_event`. The kernel packs it on `x86_64` only.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN | …`).
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

/// An epoll instance. Closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    ///
    /// # Errors
    ///
    /// The kernel's, as an [`io::Error`].
    pub fn new() -> io::Result<Self> {
        // SAFETY: integer arguments only.
        let fd = check(unsafe { syscall(nr::EPOLL_CREATE1, [EPOLL_CLOEXEC, 0, 0, 0, 0, 0]) })?;
        Ok(Self { fd: fd as RawFd })
    }

    fn ctl(&self, op: usize, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        let ptr = if op == EPOLL_CTL_DEL { 0 } else { std::ptr::addr_of_mut!(ev) as usize };
        // SAFETY: `ptr` is null (DEL) or points at the stack `ev` above,
        // which outlives the call; the kernel reads it only during it.
        check(unsafe { syscall(nr::EPOLL_CTL, [self.fd as usize, op, fd as usize, ptr, 0, 0]) })?;
        Ok(())
    }

    /// Registers `fd` for `events`, delivering `token` on readiness.
    ///
    /// # Errors
    ///
    /// The kernel's, as an [`io::Error`].
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest set of `fd`.
    ///
    /// # Errors
    ///
    /// The kernel's, as an [`io::Error`].
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The kernel's, as an [`io::Error`].
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) for readiness, filling
    /// `events` and returning how many entries are valid. `EINTR` retries
    /// internally.
    ///
    /// # Errors
    ///
    /// The kernel's, as an [`io::Error`].
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the event buffer pointer/length come from the live
            // `events` slice, which the kernel writes only during the
            // call; the sigmask argument is null (integer 0).
            let ret = unsafe {
                syscall(
                    nr::EPOLL_PWAIT,
                    [
                        self.fd as usize,
                        events.as_mut_ptr() as usize,
                        events.len(),
                        timeout_ms as usize,
                        0, // null sigmask: plain epoll_wait semantics
                        0,
                    ],
                )
            };
            match check(ret) {
                Ok(n) => return Ok(n),
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

/// A non-blocking eventfd used to wake the event loop from other threads
/// (scheduler completion callbacks, [`Server::stop`](crate::Server::stop)).
/// Closed on drop.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    ///
    /// # Errors
    ///
    /// The kernel's, as an [`io::Error`].
    pub fn new() -> io::Result<Self> {
        // SAFETY: integer arguments only.
        let fd = check(unsafe {
            syscall(nr::EVENTFD2, [0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0])
        })?;
        Ok(Self { fd: fd as RawFd })
    }

    /// The fd to register with [`Epoll::add`].
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the fd readable, waking any epoll waiting on it. Saturation
    /// (`EAGAIN` on an already-huge counter) is fine: the fd is readable,
    /// which is all a wakeup needs.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from the live stack `one`; the kernel
        // reads it only during the call.
        let _ = unsafe {
            syscall(
                nr::WRITE,
                [self.fd as usize, std::ptr::addr_of!(one) as usize, 8, 0, 0, 0],
            )
        };
    }

    /// Consumes all pending wakeups so the next [`Epoll::wait`] blocks
    /// again.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        loop {
            // SAFETY: reads 8 bytes into the live stack `counter`; the
            // kernel writes it only during the call.
            let ret = unsafe {
                syscall(
                    nr::READ,
                    [self.fd as usize, std::ptr::addr_of_mut!(counter) as usize, 8, 0, 0, 0],
                )
            };
            match check(ret) {
                Ok(_) => continue, // another wake may have landed; re-read
                Err(e) if e.raw_os_error() == Some(EAGAIN) => return,
                Err(_) => return,
            }
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

const PROT_READ: usize = 0x1;
const MAP_PRIVATE: usize = 0x02;
const MADV_WILLNEED: usize = 3;

/// A read-only, private memory mapping of a whole file. Unmapped on drop.
///
/// Backs zero-copy snapshot loading: the kernel pages file bytes in on
/// demand and shares clean pages with every other mapping of the same
/// file, so "loading" a model is an `mmap` plus header validation — no
/// bulk read, no heap copy, and repeated loads of one file cost one page
/// cache, not N heaps.
pub struct Mmap {
    addr: usize,
    len: usize,
}

// SAFETY: the mapping is read-only (PROT_READ) for its whole lifetime,
// so shared references to it may cross threads freely; `Mmap` owns the
// range exclusively until `munmap` in `Drop`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

impl Mmap {
    /// `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)` over the whole
    /// file behind `file`. Zero-length files cannot be mapped.
    ///
    /// # Errors
    ///
    /// The kernel's, as an [`io::Error`]; [`io::ErrorKind::InvalidInput`]
    /// for an empty file.
    pub fn map_file(file: &std::fs::File) -> io::Result<Self> {
        use std::os::fd::AsRawFd;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "cannot map an empty file"));
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        // SAFETY: integer arguments only (NULL hint address, validated
        // nonzero length, flags, a borrowed live fd, offset 0).
        let ret = unsafe {
            syscall(
                nr::MMAP,
                [0, len, PROT_READ, MAP_PRIVATE, file.as_raw_fd() as usize, 0],
            )
        };
        let addr = check(ret)?;
        Ok(Self { addr, len })
    }

    /// The mapped bytes. Page-aligned: `mmap` returns page-aligned
    /// addresses, so any file offset aligned to 64 stays 64-aligned in
    /// memory.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: `addr` is a live PROT_READ mapping of exactly `len`
        // bytes, valid until `munmap` in `Drop`, and never written through.
        unsafe { std::slice::from_raw_parts(self.addr as *const u8, self.len) }
    }

    /// The mapping viewed as little-endian `f32`s, or `None` when the
    /// length is not a multiple of 4. (The base address is page-aligned,
    /// so element alignment always holds.)
    pub fn as_f32s(&self) -> Option<&[f32]> {
        if self.len % 4 != 0 {
            return None;
        }
        // SAFETY: same region as `as_bytes`; f32 has no invalid bit
        // patterns, alignment is guaranteed by the page-aligned base, and
        // this build only compiles on little-endian Linux targets so the
        // on-disk LE bytes are the in-memory representation.
        Some(unsafe { std::slice::from_raw_parts(self.addr as *const f32, self.len / 4) })
    }

    /// `madvise(MADV_WILLNEED)`: asks the kernel to start reading the
    /// whole mapping in the background. Purely advisory — failure is
    /// ignored.
    pub fn advise_willneed(&self) {
        // SAFETY: `addr`/`len` describe this object's own live mapping.
        let _ = unsafe { syscall(nr::MADVISE, [self.addr, self.len, MADV_WILLNEED, 0, 0, 0]) };
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        // Errors are unrecoverable and the address range must be treated
        // as gone either way.
        // SAFETY: unmaps this object's own mapping exactly once; no view
        // can outlive `self` (the accessors borrow it).
        let _ = unsafe { syscall(nr::MUNMAP, [self.addr, self.len, 0, 0, 0, 0]) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let epoll = Epoll::new().unwrap();
        let wake = EventFd::new().unwrap();
        epoll.add(wake.raw_fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::default(); 4];

        // Nothing pending: times out with zero events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        wake.wake();
        wake.wake();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        // Copy out: `assert_eq!` would take a reference into the packed
        // struct.
        let (data, bits) = (events[0].data, events[0].events);
        assert_eq!(data, 7);
        assert_ne!(bits & EPOLLIN, 0);

        wake.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "drained fd is quiet");
    }

    #[test]
    fn mmap_views_file_bytes_and_floats() {
        let dir = std::env::temp_dir().join(format!("pecan-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.bin");
        let floats: Vec<f32> = (0..37).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mut bytes = Vec::new();
        for f in &floats {
            bytes.extend_from_slice(&f.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let map = Mmap::map_file(&std::fs::File::open(&path).unwrap()).unwrap();
        map.advise_willneed();
        assert_eq!(map.as_bytes(), &bytes[..]);
        assert_eq!(map.as_f32s().unwrap(), &floats[..]);

        // Empty files cannot be mapped; odd lengths map but refuse the
        // f32 view.
        let empty = dir.join("e.bin");
        std::fs::write(&empty, b"").unwrap();
        assert!(Mmap::map_file(&std::fs::File::open(&empty).unwrap()).is_err());
        let odd = dir.join("o.bin");
        std::fs::write(&odd, b"abc").unwrap();
        let m = Mmap::map_file(&std::fs::File::open(&odd).unwrap()).unwrap();
        assert!(m.as_f32s().is_none());
        assert_eq!(m.as_bytes(), b"abc");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn modify_and_remove_round_trip() {
        let epoll = Epoll::new().unwrap();
        let wake = EventFd::new().unwrap();
        epoll.add(wake.raw_fd(), 0, 1).unwrap();
        wake.wake();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "no interest, no event");
        epoll.modify(wake.raw_fd(), EPOLLIN, 2).unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let data = events[0].data;
        assert_eq!(data, 2, "token follows the modify");
        epoll.remove(wake.raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        // Double-remove reports the kernel's ENOENT instead of panicking.
        assert!(epoll.remove(wake.raw_fd()).is_err());
    }
}

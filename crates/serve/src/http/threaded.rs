//! Thread-per-connection front end: the portable fallback.
//!
//! A blocking accept loop hands each connection to a detached handler
//! thread. Parsing, routing and response encoding are shared with the
//! event loop (`parser::RequestParser`, `route_request`,
//! `encode_response`), so the two front ends answer byte-identically; the
//! only differences are the concurrency model and that blocking handlers
//! wait on [`BatchScheduler::predict`](crate::BatchScheduler::predict)
//! instead of completion callbacks. Each handler retags its connection
//! through the same `reading → handling → writing` gauge states the
//! event loop reports, so `/stats` and `/metrics` mean the same thing on
//! both front ends.

use super::parser::{RequestParser, DEFAULT_MAX_HEAD};
use super::{
    encode_response, encode_response_with, error_body, prediction_parts, route_request,
    HttpShared, Routed, CT_JSON,
};
use crate::stats::ConnTag;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;

pub(crate) fn accept_loop(listener: &TcpListener, shared: &Arc<HttpShared>) {
    for stream in listener.incoming() {
        // ordering: Relaxed — pure stop flag, pairs with the swap in
        // `Server::stop`, which also pokes the listener with a connect
        // so this loop wakes up to observe it; no data rides on it.
        if shared.stopping.load(Ordering::Relaxed) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        if shared.conn_stats.active() >= shared.max_connections as u64 {
            // At the connection cap: answer a typed 503 and close instead
            // of silently dropping or queueing the socket.
            shared.conn_stats.record_shed_connection();
            crate::log_debug!("serve::threaded", "connection shed at cap");
            let _ = stream.write_all(&encode_response(503, &error_body(503), false));
            continue;
        }
        let conn_shared = Arc::clone(shared);
        shared.conn_stats.record_accepted(ConnTag::Reading);
        // Handler threads are detached: a graceful stop drains the
        // scheduler, so in-flight requests still get answers before the
        // process exits.
        let spawned = std::thread::Builder::new()
            .name("pecan-serve-conn".into())
            .spawn(move || {
                // `handle_connection` always leaves the tag at Reading, so
                // this close accounting balances the accept above.
                handle_connection(stream, &conn_shared);
                conn_shared.conn_stats.record_closed(ConnTag::Reading);
            });
        if spawned.is_err() {
            shared.conn_stats.record_closed(ConnTag::Reading);
        }
    }
}

/// Moves the connection's gauge from `*tag` to `to`.
fn set_tag(shared: &HttpShared, tag: &mut ConnTag, to: ConnTag) {
    shared.conn_stats.record_retag(*tag, to);
    *tag = to;
}

/// Serves one connection until close. Invariant: the connection's gauge
/// tag is `Reading` on entry and on every return path — the caller's
/// `record_closed(Reading)` relies on it.
fn handle_connection(mut stream: TcpStream, shared: &Arc<HttpShared>) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let _ = stream.set_nodelay(true);
    let conn_gen = shared.mint_conn_gen();
    let mut tag = ConnTag::Reading;
    let mut parser = RequestParser::new(DEFAULT_MAX_HEAD, shared.max_body);
    loop {
        let request = match read_one_request(&mut stream, &mut parser) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean EOF between requests
            Err(status) => {
                if status == 408 {
                    shared.conn_stats.record_timeout();
                    crate::log_debug!(
                        "serve::threaded",
                        "read timeout mid-request",
                        conn_gen = conn_gen,
                    );
                }
                let _ = stream.write_all(&encode_response(status, &error_body(status), false));
                return;
            }
        };
        shared.conn_stats.record_request();
        // Request IDs are minted at parse time, shared with the event
        // loop's mint, so traces are unique server-wide.
        let id = shared.mint_request_id();
        // The request span carries the flight-recorder request id, so a
        // `/debug/trace` timeline joins against `/debug/requests`. On this
        // front end it covers routing, the scheduler wait and the write.
        let req_span = pecan_obs::span_with_id("serve.request", id);
        let keep_alive = request.keep_alive;
        let (status, body, content_type, initiate_shutdown) =
            match route_request(shared, &request) {
                Routed::Done { status, body, content_type, shutdown } => {
                    shared.trace_request(id, conn_gen, None, status, None);
                    (status, body, content_type, shutdown)
                }
                Routed::Predict { idx, input } => {
                    set_tag(shared, &mut tag, ConnTag::Handling);
                    shared.conn_stats.inflight_add();
                    let result = shared.registry.entry(idx).predict(input);
                    shared.conn_stats.inflight_sub();
                    let (status, body) = prediction_parts(&result);
                    shared.trace_request(id, conn_gen, Some(idx), status, result.as_ref().ok());
                    (status, body, CT_JSON, false)
                }
                Routed::TraceCapture { ms } => {
                    // Blocking is fine here: the capture only ties down
                    // this connection's handler thread.
                    set_tag(shared, &mut tag, ConnTag::Handling);
                    let body = pecan_obs::capture_window_json(
                        std::time::Duration::from_millis(ms),
                    );
                    shared.trace_request(id, conn_gen, None, 200, None);
                    (200, body, CT_JSON, false)
                }
            };
        set_tag(shared, &mut tag, ConnTag::Writing);
        let written =
            stream.write_all(&encode_response_with(status, content_type, &body, keep_alive));
        shared.conn_stats.record_response();
        drop(req_span);
        set_tag(shared, &mut tag, ConnTag::Reading);
        if initiate_shutdown {
            // Signal only after the acknowledgement left this socket, so a
            // client posting /shutdown always reads its 200 before the
            // process starts tearing down.
            let _ = shared.shutdown_tx.send(());
        }
        if written.is_err() || !keep_alive {
            return;
        }
    }
}

/// Blocks until the parser yields one request. `Ok(None)` is a clean close
/// between requests; `Err(status)` is the HTTP status to answer before
/// closing (parse errors, `400` for EOF mid-request, `408` for a read
/// timeout mid-request).
fn read_one_request(
    stream: &mut TcpStream,
    parser: &mut RequestParser,
) -> Result<Option<super::parser::Request>, u16> {
    loop {
        match parser.next_request() {
            Ok(Some(r)) => return Ok(Some(r)),
            Ok(None) => {}
            Err(e) => return Err(e.status()),
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return if parser.mid_request() { Err(400) } else { Ok(None) },
            Ok(n) => parser.push(&chunk[..n]),
            Err(_) => return if parser.mid_request() { Err(408) } else { Ok(None) },
        }
    }
}

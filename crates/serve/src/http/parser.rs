//! Incremental HTTP/1.1 request parser shared by both front ends.
//!
//! The parser is a push-based state machine: callers feed it whatever
//! bytes the socket produced ([`RequestParser::push`]) and then drain
//! complete requests ([`RequestParser::next_request`]). Nothing about it
//! assumes blocking I/O, so the same code parses requests for the
//! thread-per-connection front end (which reads until a request is
//! complete) and the epoll event loop (which parses exactly as far as the
//! bytes received so far allow and resumes on the next readiness event).
//!
//! # Contract
//!
//! For **any** byte stream, fed in **any** chunking, the parser either
//! produces a sequence of valid [`Request`]s or a typed [`ParseError`] —
//! it never panics and never needs more than the bytes of one request
//! head in memory beyond the declared body. Once an error is returned the
//! parser is poisoned: every later call returns the same error (the
//! connection is closing anyway; there is no way to resynchronise an
//! HTTP/1.1 stream after a malformed head). `tests/parser_fuzz.rs` drives
//! these properties with random streams and split points.

use std::fmt;

/// Default cap on the request head (request line + headers), matching the
/// historical front-end limit.
pub const DEFAULT_MAX_HEAD: usize = 16 << 10;

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-cased (`GET`, `POST`, …).
    pub method: String,
    /// Request target exactly as sent (`/models/mlp/predict`).
    pub target: String,
    /// The request body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
    /// Whether the connection should persist after this request:
    /// HTTP/1.1 defaults to `true`, HTTP/1.0 to `false`, and a
    /// `Connection:` header overrides either way.
    pub keep_alive: bool,
}

/// Typed rejection of a malformed request. Each variant maps onto the
/// HTTP status the front ends answer before closing ([`ParseError::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line is structurally wrong: missing method/target, or
    /// a version that is not `HTTP/1.x` → `400`.
    BadRequestLine,
    /// A `Content-Length` value that does not parse as `usize` → `400`.
    BadContentLength,
    /// The head grew past the configured cap without terminating → `431`.
    HeadTooLarge {
        /// The configured head cap in bytes.
        limit: usize,
    },
    /// The declared body exceeds the configured cap → `413`.
    BodyTooLarge {
        /// The `Content-Length` the request declared.
        declared: usize,
        /// The configured body cap in bytes.
        limit: usize,
    },
}

impl ParseError {
    /// The HTTP status a front end answers for this error.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BadRequestLine | ParseError::BadContentLength => 400,
            ParseError::HeadTooLarge { .. } => 431,
            ParseError::BodyTooLarge { .. } => 413,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadRequestLine => write!(f, "malformed request line"),
            ParseError::BadContentLength => write!(f, "unparsable Content-Length"),
            ParseError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            ParseError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds {limit}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Everything the head declares that the body phase still needs.
#[derive(Debug)]
struct Head {
    method: String,
    target: String,
    keep_alive: bool,
}

#[derive(Debug)]
enum State {
    /// Scanning buffered bytes for the `\r\n\r\n` head terminator.
    Head,
    /// Head parsed; waiting for `need` body bytes.
    Body { head: Head, need: usize },
    /// A request was malformed; the stream cannot be resynchronised.
    Failed(ParseError),
}

/// The incremental parser. See the module docs for the contract.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Offset into `buf` below which the head terminator is known absent,
    /// so repeated [`RequestParser::next_request`] calls never rescan.
    scan: usize,
    state: State,
    max_head: usize,
    max_body: usize,
}

impl RequestParser {
    /// A fresh parser with the given head and body caps.
    pub fn new(max_head: usize, max_body: usize) -> Self {
        Self { buf: Vec::new(), scan: 0, state: State::Head, max_head, max_body }
    }

    /// Appends raw socket bytes to the parse buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a completed request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// `true` when the stream ends mid-request: bytes of a partial head
    /// are buffered, or a declared body has not fully arrived. An EOF at
    /// this point is abnormal (the threaded front end answers `400`, a
    /// read timeout `408`); an EOF while `false` is a clean close between
    /// requests.
    pub fn mid_request(&self) -> bool {
        match self.state {
            State::Head => !self.buf.is_empty(),
            State::Body { .. } => true,
            State::Failed(_) => false,
        }
    }

    /// Tries to complete one request from the buffered bytes.
    ///
    /// `Ok(None)` means "need more bytes". `Ok(Some(_))` hands out the
    /// next pipelined request; call again — several requests may have
    /// arrived in one read.
    ///
    /// # Errors
    ///
    /// A typed [`ParseError`]; the same error is returned on every later
    /// call (see the module docs on poisoning).
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        loop {
            match &mut self.state {
                State::Failed(e) => return Err(e.clone()),
                State::Head => {
                    let Some(head_end) = self.find_head_end() else {
                        if self.buf.len() > self.max_head {
                            return self.fail(ParseError::HeadTooLarge { limit: self.max_head });
                        }
                        return Ok(None);
                    };
                    let parsed = parse_head(&self.buf[..head_end], self.max_body);
                    self.buf.drain(..head_end + 4);
                    self.scan = 0;
                    match parsed {
                        Ok((head, need)) => self.state = State::Body { head, need },
                        Err(e) => return self.fail(e),
                    }
                }
                State::Body { need, .. } => {
                    if self.buf.len() < *need {
                        return Ok(None);
                    }
                    let need = *need;
                    let body: Vec<u8> = self.buf.drain(..need).collect();
                    let State::Body { head, .. } = std::mem::replace(&mut self.state, State::Head)
                    else {
                        unreachable!("state was matched as Body above");
                    };
                    return Ok(Some(Request {
                        method: head.method,
                        target: head.target,
                        body,
                        keep_alive: head.keep_alive,
                    }));
                }
            }
        }
    }

    fn fail(&mut self, e: ParseError) -> Result<Option<Request>, ParseError> {
        self.state = State::Failed(e.clone());
        Err(e)
    }

    /// Finds `\r\n\r\n`, resuming from where the last search gave up so
    /// drip-fed heads cost linear, not quadratic, scanning.
    fn find_head_end(&mut self) -> Option<usize> {
        if self.buf.len() < 4 {
            return None;
        }
        match self.buf[self.scan..].windows(4).position(|w| w == b"\r\n\r\n") {
            Some(i) => Some(self.scan + i),
            None => {
                // The last 3 bytes may be a prefix of the terminator.
                self.scan = self.buf.len() - 3;
                None
            }
        }
    }
}

/// Parses a complete head (everything before `\r\n\r\n`) into the request
/// metadata plus the declared body length.
fn parse_head(head: &[u8], max_body: usize) -> Result<(Head, usize), ParseError> {
    let text = String::from_utf8_lossy(head);
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let target = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequestLine);
    }
    let mut content_length = 0usize;
    // Persistence default follows the protocol version: 1.1 keeps alive
    // unless told otherwise, 1.0 closes unless told otherwise.
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        // Lines without a colon are ignored (same tolerance as the
        // original front end — nothing this server needs hides in them).
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| ParseError::BadContentLength)?;
            }
            "connection" => keep_alive = value.eq_ignore_ascii_case("keep-alive"),
            _ => {}
        }
    }
    if content_length > max_body {
        return Err(ParseError::BodyTooLarge { declared: content_length, limit: max_body });
    }
    Ok((Head { method, target, keep_alive }, content_length))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> RequestParser {
        RequestParser::new(DEFAULT_MAX_HEAD, 1 << 20)
    }

    #[test]
    fn whole_request_in_one_push() {
        let mut p = parser();
        p.push(b"POST /predict HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc");
        let r = p.next_request().unwrap().unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.target, "/predict");
        assert_eq!(r.body, b"abc");
        assert!(r.keep_alive);
        assert_eq!(p.next_request().unwrap(), None);
        assert!(!p.mid_request());
    }

    #[test]
    fn byte_by_byte_drip() {
        let wire = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut p = parser();
        for (i, b) in wire.iter().enumerate() {
            assert_eq!(p.next_request().unwrap(), None, "request complete early at {i}");
            p.push(std::slice::from_ref(b));
        }
        let r = p.next_request().unwrap().unwrap();
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut p = parser();
        p.push(b"POST /a HTTP/1.1\r\nContent-Length: 1\r\n\r\nXGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request().unwrap().unwrap().target, "/a");
        assert_eq!(p.next_request().unwrap().unwrap().target, "/b");
        assert_eq!(p.next_request().unwrap(), None);
    }

    #[test]
    fn keep_alive_defaults_follow_version_and_header() {
        let cases: &[(&[u8], bool)] = &[
            (b"GET / HTTP/1.1\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n", true),
        ];
        for (wire, expect) in cases {
            let mut p = parser();
            p.push(wire);
            assert_eq!(p.next_request().unwrap().unwrap().keep_alive, *expect);
        }
    }

    #[test]
    fn typed_errors_and_poisoning() {
        let mut p = parser();
        p.push(b"NOT-HTTP\r\n\r\n");
        assert_eq!(p.next_request(), Err(ParseError::BadRequestLine));
        // Poisoned: same answer forever, even after more bytes.
        p.push(b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request(), Err(ParseError::BadRequestLine));

        let mut p = parser();
        p.push(b"POST / HTTP/1.1\r\nContent-Length: huge\r\n\r\n");
        assert_eq!(p.next_request(), Err(ParseError::BadContentLength));
        assert_eq!(p.next_request().unwrap_err().status(), 400);
    }

    #[test]
    fn oversized_body_and_head_are_typed() {
        let mut p = RequestParser::new(64, 8);
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n");
        assert_eq!(
            p.next_request(),
            Err(ParseError::BodyTooLarge { declared: 9, limit: 8 })
        );

        let mut p = RequestParser::new(32, 8);
        p.push(b"GET / HTTP/1.1\r\nX-Filler: aaaaaaaaaaaaaaaaaaaaaaaaa");
        assert_eq!(p.next_request(), Err(ParseError::HeadTooLarge { limit: 32 }));
        assert_eq!(ParseError::HeadTooLarge { limit: 32 }.status(), 431);
        assert_eq!(ParseError::BodyTooLarge { declared: 9, limit: 8 }.status(), 413);
    }

    #[test]
    fn headers_without_colon_are_ignored() {
        let mut p = parser();
        p.push(b"GET / HTTP/1.1\r\ngarbage line no colon\r\nHost: x\r\n\r\n");
        assert!(p.next_request().unwrap().is_some());
    }

    #[test]
    fn mid_request_tracks_partial_state() {
        let mut p = parser();
        assert!(!p.mid_request());
        p.push(b"GET / HT");
        assert!(p.mid_request());
        p.push(b"TP/1.1\r\n\r\n");
        let _ = p.next_request().unwrap().unwrap();
        assert!(!p.mid_request());
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab");
        assert_eq!(p.next_request().unwrap(), None);
        assert!(p.mid_request(), "waiting on body bytes is mid-request");
    }
}

//! Readiness-based front end: one epoll-driven thread multiplexing every
//! connection.
//!
//! The loop owns a slab of [`Conn`] state machines, a non-blocking
//! listener, and an eventfd waker. Each iteration:
//!
//! 1. `epoll_wait` (timeout = the earliest idle deadline) for socket
//!    readiness, new connections, or a waker poke;
//! 2. drain readable sockets into their incremental parsers, route every
//!    complete request (shared [`route_request`]), and hand inference to
//!    the model's [`BatchScheduler`](crate::BatchScheduler) via
//!    [`submit_with`](crate::BatchScheduler::submit_with) — the completion
//!    callback pushes onto [`LoopShared::completions`] and pokes the
//!    waker, so inference threads never touch a socket;
//! 3. drain the completion queue, encode responses into their reserved
//!    pipeline slots, and flush each connection's ready prefix as far as
//!    the socket allows.
//!
//! Batching is untouched: the scheduler sees the same `submit` stream the
//! threaded front end produces, just without a thread per connection.
//!
//! Overload and fault handling: accepts beyond
//! [`ServerConfig::max_connections`](super::ServerConfig::max_connections)
//! are answered `503` and closed; per-connection progress deadlines
//! (`read_timeout`) close idle connections, answer `408` mid-request, and
//! cut off stalled readers; a `stop` request drains — the listener is
//! deregistered, every connection finishes its pipeline, and the loop
//! exits when the last connection closes or the drain deadline passes.

use super::conn::Conn;
use super::parser::DEFAULT_MAX_HEAD;
use super::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLRDHUP};
use super::{
    encode_response, encode_response_with, error_body, error_response, lock, prediction_parts,
    route_request, HttpShared, Routed,
};
use crate::error::ServeError;
use crate::scheduler::Prediction;
use crate::stats::ConnTag;
use std::io::{self, Write};
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Epoll token of the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll token of the eventfd waker.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// One finished piece of off-loop work on its way back to a connection.
/// `gen` and the pipeline sequence make stale completions (connection
/// closed, slot reused) inert — see the invariants on [`super::conn`].
struct Completion {
    conn: usize,
    gen: u64,
    seq: u64,
    /// Request ID (for the flight-recorder trace).
    id: u64,
    payload: Payload,
}

/// What a [`Completion`] delivers. Inference completions come from
/// scheduler workers; trace captures come from the helper thread that
/// `GET /debug/trace` spawns (the capture blocks for its whole window,
/// which the loop thread never may).
enum Payload {
    Inference {
        /// Registry index of the model that served it.
        model: usize,
        result: Result<Prediction, ServeError>,
    },
    /// Pre-rendered Chrome trace JSON.
    Trace(String),
}

/// State shared between the loop thread and scheduler completion
/// callbacks.
pub(crate) struct LoopShared {
    waker: EventFd,
    completions: Mutex<Vec<Completion>>,
}

/// Join handle for a running event loop.
pub(crate) struct EventLoopHandle {
    thread: JoinHandle<()>,
    shared: Arc<LoopShared>,
}

impl EventLoopHandle {
    /// Wakes the loop (the caller has already raised `stopping`) and waits
    /// for it to drain and exit.
    pub(crate) fn stop(self) {
        self.shared.waker.wake();
        let _ = self.thread.join();
    }
}

/// Binds the loop to an already-bound listener and spawns its thread.
pub(crate) fn start(listener: TcpListener, http: Arc<HttpShared>) -> io::Result<EventLoopHandle> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let shared = Arc::new(LoopShared {
        waker: EventFd::new()?,
        completions: Mutex::new(Vec::new()),
    });
    epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(shared.waker.raw_fd(), EPOLLIN, TOKEN_WAKER)?;
    let mut lp = EventLoop {
        epoll,
        listener,
        http,
        shared: Arc::clone(&shared),
        conns: Vec::new(),
        free: Vec::new(),
        live: 0,
        draining: false,
        drain_deadline: None,
    };
    let thread = std::thread::Builder::new()
        .name("pecan-serve-epoll".into())
        .spawn(move || lp.run())?;
    Ok(EventLoopHandle { thread, shared })
}

struct EventLoop {
    epoll: Epoll,
    listener: TcpListener,
    http: Arc<HttpShared>,
    shared: Arc<LoopShared>,
    /// Connection slab; the epoll token of a connection is its index.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    draining: bool,
    drain_deadline: Option<Instant>,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = [EpollEvent::default(); 256];
        let mut scratch = vec![0u8; 16 << 10];
        loop {
            // One span per loop iteration, covering the epoll wait and
            // all dispatch: idle iterations trace as wall ≫ cpu, loaded
            // ones show dispatch cost.
            let _poll_span = pecan_obs::span("event_loop.poll");
            let timeout = self.next_timeout_ms(Instant::now());
            let Ok(n) = self.epoll.wait(&mut events, timeout) else { break };
            let now = Instant::now();
            for ev in &events[..n] {
                let token = ev.data;
                let bits = ev.events;
                match token {
                    TOKEN_LISTENER => self.accept_ready(now),
                    TOKEN_WAKER => self.shared.waker.drain(),
                    idx => self.conn_event(idx as usize, bits, now, &mut scratch),
                }
            }
            self.drain_completions(now);
            // ordering: Relaxed — pure stop flag, pairs with the swap in
            // `Server::stop`; the eventfd wake that follows it already
            // synchronizes through the kernel, this load just reads the
            // decision.
            if !self.draining && self.http.stopping.load(Ordering::Relaxed) {
                self.begin_drain(now);
            }
            self.check_timeouts(now);
            if self.draining {
                if self.live == 0 {
                    break;
                }
                if self.drain_deadline.is_some_and(|d| now >= d) {
                    break; // drain deadline: force-close the stragglers
                }
            }
        }
    }

    /// `epoll_wait` timeout: the earliest connection deadline (or the
    /// drain deadline), `-1` when nothing is waiting on the clock.
    fn next_timeout_ms(&self, now: Instant) -> i32 {
        let mut earliest: Option<Instant> = if self.draining { self.drain_deadline } else { None };
        for conn in self.conns.iter().flatten() {
            if conn.pipeline.pending() > 0 {
                // Waiting on inference, not the client; no client deadline.
                continue;
            }
            let d = conn.last_activity + self.http.read_timeout;
            earliest = Some(earliest.map_or(d, |e| e.min(d)));
        }
        match earliest {
            None => -1,
            // +1ms so the wakeup lands past the deadline instead of
            // spinning just short of it.
            Some(t) => t.saturating_duration_since(now).as_millis().min(60_000) as i32 + 1,
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        if self.draining {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    if self.live >= self.http.max_connections {
                        // Connection cap: typed 503, then close.
                        self.http.conn_stats.record_shed_connection();
                        crate::log_debug!(
                            "serve::event_loop",
                            "connection shed at cap",
                            live = self.live,
                        );
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.write(&encode_response(503, &error_body(503), false));
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    // Generations come from the server-wide mint shared
                    // with the threaded front end, so flight-recorder
                    // traces are unique across front ends.
                    let gen = self.http.mint_conn_gen();
                    let mut conn =
                        Conn::new(stream, gen, now, DEFAULT_MAX_HEAD, self.http.max_body);
                    let interest = EPOLLIN | EPOLLRDHUP;
                    if self
                        .epoll
                        .add(conn.stream.as_raw_fd(), interest, idx as u64)
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    conn.registered = interest;
                    self.conns[idx] = Some(conn);
                    self.live += 1;
                    self.http.conn_stats.record_accepted(ConnTag::Reading);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, idx: usize, bits: u32, now: Instant, scratch: &mut [u8]) {
        {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
            if bits & EPOLLERR != 0 {
                self.close(idx);
                return;
            }
            if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0
                && conn.read_some(scratch, now).is_err()
            {
                self.close(idx);
                return;
            }
        }
        self.process_requests(idx, now);
        self.finish_io(idx, now);
    }

    /// Parses and routes every complete request buffered on `idx`, up to
    /// the pipeline cap (bounded buffering, invariant 3 of
    /// [`super::conn`]).
    fn process_requests(&mut self, idx: usize, now: Instant) {
        let _ = now;
        loop {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
            if conn.close_after_flush
                || self.draining
                || conn.pipeline.len() >= self.http.max_pipeline
            {
                return;
            }
            match conn.parser.next_request() {
                Ok(None) => {
                    if conn.read_closed {
                        if conn.parser.mid_request() {
                            // EOF mid-request: same 400 the threaded front
                            // end answers.
                            self.http.conn_stats.record_request();
                            conn.pipeline
                                .push_ready(encode_response(400, &error_body(400), false));
                            self.http.conn_stats.record_response();
                        }
                        // Half-closed peer: flush what is owed, then close.
                        conn.close_after_flush = true;
                    }
                    return;
                }
                Ok(Some(req)) => {
                    self.http.conn_stats.record_request();
                    // Request IDs are minted at parse time from the
                    // server-wide mint shared with the threaded front end.
                    let id = self.http.mint_request_id();
                    // On this front end the request span covers routing and
                    // submission only — the inference wait happens off-loop
                    // and is visible as the matching `scheduler.batch` span
                    // (joined by id against `/debug/requests`).
                    let _req_span = pecan_obs::span_with_id("serve.request", id);
                    let keep_alive = req.keep_alive;
                    match route_request(&self.http, &req) {
                        Routed::Done { status, body, content_type, shutdown } => {
                            conn.pipeline.push_ready(encode_response_with(
                                status,
                                content_type,
                                &body,
                                keep_alive,
                            ));
                            self.http.conn_stats.record_response();
                            self.http.trace_request(id, conn.gen, None, status, None);
                            if shutdown {
                                conn.shutdown_after_flush = true;
                            }
                        }
                        Routed::Predict { idx: entry, input } => {
                            let seq = conn.pipeline.push_pending(keep_alive);
                            let gen = conn.gen;
                            let shared = Arc::clone(&self.shared);
                            let submit = self.http.registry.entry(entry).submit_with(
                                input,
                                Box::new(move |result| {
                                    lock(&shared.completions).push(Completion {
                                        conn: idx,
                                        gen,
                                        seq,
                                        id,
                                        payload: Payload::Inference { model: entry, result },
                                    });
                                    shared.waker.wake();
                                }),
                            );
                            match submit {
                                Ok(()) => self.http.conn_stats.inflight_add(),
                                Err(e) => {
                                    // Rejected synchronously (bad input,
                                    // hard queue bound, shutting down).
                                    let (status, body) = error_response(&e);
                                    conn.pipeline
                                        .complete(seq, encode_response(status, &body, keep_alive));
                                    self.http.conn_stats.record_response();
                                    self.http.trace_request(id, gen, Some(entry), status, None);
                                }
                            }
                        }
                        Routed::TraceCapture { ms } => {
                            // The capture sleeps for its whole window; the
                            // loop thread may never block, so a helper
                            // thread records it and delivers the JSON
                            // through the completion queue like any
                            // inference answer.
                            let seq = conn.pipeline.push_pending(keep_alive);
                            let gen = conn.gen;
                            let shared = Arc::clone(&self.shared);
                            let spawned = std::thread::Builder::new()
                                .name("pecan-trace-capture".into())
                                .spawn(move || {
                                    let json = pecan_obs::capture_window_json(
                                        std::time::Duration::from_millis(ms),
                                    );
                                    lock(&shared.completions).push(Completion {
                                        conn: idx,
                                        gen,
                                        seq,
                                        id,
                                        payload: Payload::Trace(json),
                                    });
                                    shared.waker.wake();
                                });
                            if spawned.is_err() {
                                let body = "{\"error\":\"cannot spawn capture thread\"}";
                                conn.pipeline
                                    .complete(seq, encode_response(500, body, keep_alive));
                                self.http.conn_stats.record_response();
                                self.http.trace_request(id, gen, None, 500, None);
                            }
                        }
                    }
                    if !keep_alive {
                        // `Connection: close`: the client promised nothing
                        // further; stop parsing (invariant 4).
                        conn.close_after_flush = true;
                        return;
                    }
                }
                Err(e) => {
                    let status = e.status();
                    conn.pipeline
                        .push_ready(encode_response(status, &error_body(status), false));
                    self.http.conn_stats.record_response();
                    conn.close_after_flush = true;
                    return;
                }
            }
        }
    }

    /// Encodes every completed inference (or trace capture) into its
    /// reserved pipeline slot.
    fn drain_completions(&mut self, now: Instant) {
        let completions = std::mem::take(&mut *lock(&self.shared.completions));
        for c in completions {
            // The span is recorded even when the connection is gone — the
            // work happened; only the delivery was moot.
            let (status, body) = match c.payload {
                Payload::Inference { model, result } => {
                    self.http.conn_stats.inflight_sub();
                    let (status, body) = prediction_parts(&result);
                    self.http
                        .trace_request(c.id, c.gen, Some(model), status, result.as_ref().ok());
                    (status, body)
                }
                Payload::Trace(json) => {
                    self.http.trace_request(c.id, c.gen, None, 200, None);
                    (200, json)
                }
            };
            let stale = 'check: {
                let Some(conn) = self.conns.get_mut(c.conn).and_then(Option::as_mut) else {
                    break 'check true;
                };
                if conn.gen != c.gen {
                    break 'check true; // slot reused; completion is inert
                }
                let Some(keep_alive) = conn.pipeline.pending_keep_alive(c.seq) else {
                    break 'check true;
                };
                conn.pipeline.complete(c.seq, encode_response(status, &body, keep_alive));
                self.http.conn_stats.record_response();
                false
            };
            if !stale {
                self.process_requests(c.conn, now); // pipeline cap may have cleared
                self.finish_io(c.conn, now);
            }
        }
    }

    /// Flushes, retags, re-registers interest, and closes `idx` if it is
    /// finished.
    fn finish_io(&mut self, idx: usize, now: Instant) {
        let close;
        {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
            conn.flush_ready();
            if conn.try_write(now).is_err() {
                close = true;
            } else {
                if conn.shutdown_after_flush && conn.drained() {
                    conn.shutdown_after_flush = false;
                    // The /shutdown acknowledgement has fully left this
                    // socket; now the server may begin draining.
                    let _ = self.http.shutdown_tx.send(());
                }
                close = conn.drained() && (conn.close_after_flush || conn.read_closed);
                if !close {
                    let tag = conn.current_tag();
                    if tag != conn.tag {
                        self.http.conn_stats.record_retag(conn.tag, tag);
                        conn.tag = tag;
                    }
                    let want = conn.desired_interest(self.http.max_pipeline, self.draining);
                    if want != conn.registered
                        && self
                            .epoll
                            .modify(conn.stream.as_raw_fd(), want, idx as u64)
                            .is_ok()
                    {
                        conn.registered = want;
                    }
                }
            }
        }
        if close {
            self.close(idx);
        }
    }

    /// Closes and frees slot `idx`. Dropping the [`Conn`] closes the
    /// socket; its generation stays burned, so in-flight completions for
    /// it are dropped on arrival.
    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.epoll.remove(conn.stream.as_raw_fd());
            self.http.conn_stats.record_closed(conn.tag);
            self.free.push(idx);
            self.live -= 1;
        }
    }

    /// Enforces per-connection progress deadlines: `408` mid-request,
    /// silent close when idle between requests, cut-off for stalled
    /// readers. Connections waiting on inference are exempt — the client
    /// is not the slow party.
    fn check_timeouts(&mut self, now: Instant) {
        for idx in 0..self.conns.len() {
            let expired = {
                let Some(conn) = self.conns[idx].as_mut() else { continue };
                if conn.pipeline.pending() > 0
                    || now < conn.last_activity + self.http.read_timeout
                {
                    continue;
                }
                if conn.parser.mid_request() && conn.write_backlog() == 0 {
                    // Mid-request: the 408 the threaded front end answers,
                    // best-effort (the socket may be unwritable).
                    self.http.conn_stats.record_timeout();
                    crate::log_debug!(
                        "serve::event_loop",
                        "read timeout mid-request",
                        conn_gen = conn.gen,
                    );
                    let _ = conn.stream.write(&encode_response(408, &error_body(408), false));
                } else if conn.write_backlog() > 0 {
                    // Stalled reader: it cannot wedge the loop; cut it off.
                    self.http.conn_stats.record_timeout();
                    crate::log_debug!(
                        "serve::event_loop",
                        "stalled reader cut off",
                        conn_gen = conn.gen,
                        backlog = conn.write_backlog(),
                    );
                }
                true
            };
            if expired {
                self.close(idx);
            }
        }
    }

    /// Enters drain mode: stop accepting, finish every pipeline, close
    /// each connection as it empties.
    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline = Some(now + self.http.read_timeout);
        crate::log_info!("serve::event_loop", "draining", live = self.live);
        let _ = self.epoll.remove(self.listener.as_raw_fd());
        for idx in 0..self.conns.len() {
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.close_after_flush = true;
            } else {
                continue;
            }
            self.finish_io(idx, now);
        }
    }
}

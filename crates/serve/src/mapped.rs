//! Memory-mapped snapshot loading: engines served straight from page cache.
//!
//! [`FrozenEngine::open_snapshot`] maps a version-3 snapshot file
//! (`PROT_READ`, `MAP_PRIVATE`) and builds the engine as borrowed views
//! into the mapping — validation happens on the header, the bulk tensors
//! are [`pecan_tensor::Tensor::from_shared`] windows that the kernel pages
//! in on first touch. Cold start is an `mmap` plus a header parse no
//! matter how large the model is, and N processes (or N reloads) of one
//! file share one copy of the weights in page cache. See
//! `docs/snapshot-format.md` for why the v3 layout (64-byte-aligned
//! little-endian sections in runtime layout) makes this possible.
//!
//! On targets without the raw-syscall layer (anything but Linux
//! `x86_64`/`aarch64` — see [`mmap_supported`]), and for version-1/2
//! files, `open_snapshot` transparently falls back to the copying loader
//! [`FrozenEngine::load_snapshot`]: same engine, same bits, just a heap
//! copy.

use crate::engine::FrozenEngine;
use crate::error::SnapshotError;
use std::path::Path;

/// `true` when this build can memory-map snapshots (Linux on `x86_64` or
/// `aarch64` — the same gate as the event-loop front end). Everywhere
/// else [`FrozenEngine::open_snapshot`] silently uses the copying loader.
pub fn mmap_supported() -> bool {
    cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    use crate::error::SnapshotError;
    use crate::http::sys::Mmap;
    use pecan_tensor::F32Source;
    use std::path::Path;
    use std::sync::Arc;

    /// A whole snapshot file held as one read-only memory mapping, shared
    /// (via `Arc`) by every tensor of the engine built over it. The
    /// mapping lives exactly as long as the last tensor viewing it.
    #[derive(Debug)]
    pub struct MappedSnapshot {
        map: Mmap,
    }

    impl MappedSnapshot {
        pub fn open(path: &Path) -> Result<Arc<Self>, SnapshotError> {
            let file = std::fs::File::open(path)?;
            let map = Mmap::map_file(&file)?;
            if map.as_f32s().is_none() {
                return Err(SnapshotError::Corrupt(format!(
                    "snapshot length {} is not a multiple of 4",
                    map.as_bytes().len()
                )));
            }
            Ok(Arc::new(Self { map }))
        }

        pub fn bytes(&self) -> &[u8] {
            self.map.as_bytes()
        }

        pub fn prefetch(&self) {
            self.map.advise_willneed();
        }
    }

    impl F32Source for MappedSnapshot {
        fn f32s(&self) -> &[f32] {
            self.map.as_f32s().expect("length checked at open")
        }
    }
}

fn open_inner(path: &Path, verify_sections: bool) -> Result<FrozenEngine, SnapshotError> {
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        use crate::snapshot::{SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
        use pecan_tensor::F32Source;
        use std::sync::Arc;

        // Only v3 files have a mappable layout; anything else (older
        // versions, foreign files, unmappable paths) goes through the
        // copying loader so errors and bits match `load_snapshot` exactly.
        if let Ok(mapped) = imp::MappedSnapshot::open(path) {
            let header = mapped.bytes();
            let is_v3 = header.len() >= 12
                && header[..SNAPSHOT_MAGIC.len()] == SNAPSHOT_MAGIC
                && u32::from_le_bytes(header[8..12].try_into().expect("four bytes"))
                    == SNAPSHOT_VERSION;
            if is_v3 {
                if !verify_sections {
                    // Warm the page cache in the background; purely
                    // advisory, the open itself stays instant.
                    mapped.prefetch();
                }
                let owner: Arc<dyn F32Source> = mapped.clone();
                return crate::snapshot::engine_from_shared(
                    &owner,
                    mapped.bytes(),
                    verify_sections,
                );
            }
        }
    }
    let _ = verify_sections; // the copying loader always verifies
    FrozenEngine::load_snapshot(path)
}

impl FrozenEngine {
    /// Opens a snapshot for serving: version-3 files on supported targets
    /// are memory-mapped and the engine's bulk tensors borrow the mapping
    /// (no bulk copy, no bulk read — the header is validated, weights
    /// fault in on first use). Version-1/2 files and unsupported targets
    /// fall back to [`FrozenEngine::load_snapshot`] transparently.
    ///
    /// The fast path checks the header CRC but **not** the per-section
    /// CRCs (checking them would read every byte, defeating the instant
    /// cold start). Use [`FrozenEngine::open_snapshot_verified`] or
    /// `snapshot-tool verify` when integrity matters more than latency.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] variant; see that type's docs.
    pub fn open_snapshot(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        open_inner(path.as_ref(), false)
    }

    /// Like [`FrozenEngine::open_snapshot`], but also verifies every
    /// section CRC before returning (reads the whole file once; the
    /// engine still borrows the mapping afterwards).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] variant; see that type's docs.
    pub fn open_snapshot_verified(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        open_inner(path.as_ref(), true)
    }

    /// `true` when any of the engine's bulk tensors is a borrowed view
    /// into shared storage (a memory-mapped snapshot) rather than a heap
    /// copy.
    pub fn uses_shared_storage(&self) -> bool {
        self.stages
            .iter()
            .filter_map(|s| s.lut())
            .any(|l| l.cam_rows().iter().any(|t| t.is_shared()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pecan-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn open_snapshot_matches_copying_loader_bit_for_bit() {
        let dir = tmp_dir("open");
        for engine in [demo::mlp_engine(11), demo::lenet_engine(11)] {
            let path = dir.join(format!("{}.psnp", engine.name().unwrap()));
            engine.save_snapshot(&path).unwrap();
            let copied = FrozenEngine::load_snapshot(&path).unwrap();
            let opened = FrozenEngine::open_snapshot(&path).unwrap();
            let verified = FrozenEngine::open_snapshot_verified(&path).unwrap();
            assert!(!copied.uses_shared_storage());
            if mmap_supported() {
                assert!(opened.uses_shared_storage(), "v3 open must borrow the mapping");
                assert!(verified.uses_shared_storage());
            }
            let x = vec![0.375f32; engine.input_len()];
            let want = engine.predict(&x).unwrap();
            assert_eq!(copied.predict(&x).unwrap(), want);
            assert_eq!(opened.predict(&x).unwrap(), want);
            assert_eq!(verified.predict(&x).unwrap(), want);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_snapshot_falls_back_for_v2_files_and_reports_missing_files() {
        let dir = tmp_dir("open-v2");
        let engine = demo::mlp_engine(12);
        let path = dir.join("mlp-v2.psnp");
        std::fs::write(&path, engine.snapshot_bytes_versioned(2).unwrap()).unwrap();
        let opened = FrozenEngine::open_snapshot(&path).unwrap();
        assert!(!opened.uses_shared_storage(), "v2 loads via the copying path");
        let x = vec![0.25f32; engine.input_len()];
        assert_eq!(opened.predict(&x).unwrap(), engine.predict(&x).unwrap());
        assert!(matches!(
            FrozenEngine::open_snapshot(dir.join("nope.psnp")),
            Err(SnapshotError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verified_open_catches_section_corruption() {
        let dir = tmp_dir("open-verify");
        let engine = demo::mlp_engine(13);
        let path = dir.join("mlp.psnp");
        let mut bytes = engine.snapshot_bytes();
        let info = crate::snapshot::inspect_snapshot_bytes(&bytes).unwrap();
        let s = info.sections[info.sections.len() / 2];
        bytes[s.offset as usize] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FrozenEngine::open_snapshot_verified(&path),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        if mmap_supported() {
            // The fast open accepts it by design — the header is intact.
            assert!(FrozenEngine::open_snapshot(&path).is_ok());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Minimal JSON helpers for the serving wire format.
//!
//! The workspace is offline (no serde), and the protocol only needs flat
//! `f32` arrays and flat objects, so this module hand-rolls exactly that.
//! Numbers are formatted with Rust's shortest-round-trip `Display`, which
//! means a value survives format→parse **bit-identically** — the property
//! that lets the HTTP tests assert served predictions equal in-process
//! predictions down to the last bit.

/// Formats a float slice as a JSON array (`[1,0.5,-3.25]`).
///
/// Uses shortest-round-trip formatting: parsing the output with
/// [`parse_f32_array`] recovers the exact input bits (finite values;
/// non-finite values are not valid JSON and do not occur in engine
/// outputs).
pub fn format_f32_array(values: &[f32]) -> String {
    let mut out = String::with_capacity(values.len() * 8 + 2);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v}"));
    }
    out.push(']');
    out
}

/// Parses a JSON array of numbers (`[0.1, 2, -3e-4]`).
///
/// # Errors
///
/// A human-readable description of the first syntax problem.
pub fn parse_f32_array(text: &str) -> Result<Vec<f32>, String> {
    let mut rest = text.trim();
    rest = rest.strip_prefix('[').ok_or("expected '[' to open the array")?.trim_start();
    let mut values = Vec::new();
    if let Some(tail) = rest.strip_prefix(']') {
        if !tail.trim().is_empty() {
            return Err("trailing content after array".into());
        }
        return Ok(values);
    }
    loop {
        let end = rest
            .find([',', ']'])
            .ok_or("array is never closed")?;
        let (token, tail) = rest.split_at(end);
        let token = token.trim();
        let value: f32 = token
            .parse()
            .map_err(|_| format!("`{token}` is not a number"))?;
        if !value.is_finite() {
            return Err(format!("`{token}` is not a finite JSON number"));
        }
        values.push(value);
        if let Some(after) = tail.strip_prefix(']') {
            if !after.trim().is_empty() {
                return Err("trailing content after array".into());
            }
            return Ok(values);
        }
        rest = tail.strip_prefix(',').expect("split at ',' or ']'").trim_start();
    }
}

/// Extracts `"key": [ … ]` from a flat JSON object and parses the array.
///
/// # Errors
///
/// When the key is missing or its value is not a well-formed number array.
pub fn array_field(json: &str, key: &str) -> Result<Vec<f32>, String> {
    let start = field_start(json, key)?;
    let ws = json[start..].len() - json[start..].trim_start().len();
    let from = start + ws;
    if !json[from..].starts_with('[') {
        return Err(format!("`{key}` is not an array"));
    }
    let close = json[from..]
        .find(']')
        .ok_or_else(|| format!("`{key}` array is never closed"))?;
    parse_f32_array(&json[from..=from + close])
}

/// Extracts the numeric value of `"key": n` from a flat JSON object.
///
/// # Errors
///
/// When the key is missing or the value does not parse as a number.
pub fn number_field(json: &str, key: &str) -> Result<f64, String> {
    let start = field_start(json, key)?;
    let token: String = json[start..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    token.parse().map_err(|_| format!("`{key}` is not a number"))
}

/// Extracts the string value of `"key": "…"` from a flat JSON object.
/// Handles the escapes [`escape`] emits (`\" \\ \n \r \t \uXXXX`).
///
/// # Errors
///
/// When the key is missing or the value is not a string literal.
pub fn string_field(json: &str, key: &str) -> Result<String, String> {
    let start = field_start(json, key)?;
    let rest = json[start..].trim_start();
    let Some(inner) = rest.strip_prefix('"') else {
        return Err(format!("`{key}` is not a string"));
    };
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("`{key}` has a bad \\u escape"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("`{key}` has a bad \\u escape"))?,
                    );
                }
                _ => return Err(format!("`{key}` has a bad escape")),
            },
            c => out.push(c),
        }
    }
    Err(format!("`{key}` string is never closed"))
}

fn field_start(json: &str, key: &str) -> Result<usize, String> {
    let marker = format!("\"{key}\":");
    json.find(&marker)
        .map(|i| i + marker.len())
        .ok_or_else(|| format!("field `{key}` not found"))
}

/// Escapes a string for embedding inside a JSON string literal.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_round_trip_bit_exactly() {
        let values = vec![0.0f32, -0.0, 1.5, 0.1, f32::MIN_POSITIVE, 3.402_823_5e38, -7.25];
        let parsed = parse_f32_array(&format_f32_array(&values)).unwrap();
        assert_eq!(parsed.len(), values.len());
        for (a, b) in values.iter().zip(&parsed) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} must survive the wire");
        }
    }

    #[test]
    fn parser_accepts_whitespace_and_empty() {
        assert_eq!(parse_f32_array("[ ]").unwrap(), Vec::<f32>::new());
        assert_eq!(parse_f32_array(" [ 1 , 2.5 ,-3e1 ] ").unwrap(), vec![1.0, 2.5, -30.0]);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "1,2", "[1,2", "[1,,2]", "[a]", "[1] junk", "[1,2]]"] {
            assert!(parse_f32_array(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn object_field_extraction() {
        let json = r#"{"status":"ok","input_len":64,"output":[1,2.5]}"#;
        assert_eq!(number_field(json, "input_len").unwrap(), 64.0);
        assert_eq!(array_field(json, "output").unwrap(), vec![1.0, 2.5]);
        assert!(number_field(json, "missing").is_err());
        assert!(array_field(json, "status").is_err());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn string_field_extraction_round_trips_escapes() {
        let json = r#"{"model":"le-net_v2","note":"a\"b\\c\nd","n":3}"#;
        assert_eq!(string_field(json, "model").unwrap(), "le-net_v2");
        assert_eq!(string_field(json, "note").unwrap(), "a\"b\\c\nd");
        assert!(string_field(json, "n").is_err());
        assert!(string_field(json, "missing").is_err());
        let rt = format!("{{\"x\":\"{}\"}}", escape("tab\tและ\u{1}"));
        assert_eq!(string_field(&rt, "x").unwrap(), "tab\tและ\u{1}");
    }
}

//! Minimal blocking HTTP/1.1 client on a keep-alive connection.
//!
//! Exactly enough protocol to talk to [`Server`](crate::Server): one
//! request at a time, `Content-Length` bodies, persistent connections,
//! and model-aware routing helpers for multi-model servers
//! ([`HttpClient::predict`], [`HttpClient::healthz`],
//! [`predict_path`]). Shared by the `loadgen` binary, the end-to-end
//! tests and the serving example so the wire handling lives in one place.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The predict route for a model: `/predict` for `None` (the server's
/// default model), `/models/{name}/predict` otherwise.
pub fn predict_path(model: Option<&str>) -> String {
    route_path(model, "predict")
}

/// The `rest` route scoped to a model (`healthz`, `stats`, `predict`).
pub fn route_path(model: Option<&str>, rest: &str) -> String {
    match model {
        None => format!("/{rest}"),
        Some(m) => format!("/models/{m}/{rest}"),
    }
}

/// A keep-alive HTTP/1.1 connection to one server.
///
/// # Example
///
/// ```no_run
/// use pecan_serve::client::HttpClient;
///
/// let mut client = HttpClient::connect("127.0.0.1:7878").unwrap();
/// let (status, body) = client.call("GET", "/healthz", "").unwrap();
/// assert_eq!(status, 200);
/// assert!(body.contains("input_len"));
/// ```
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
}

impl HttpClient {
    /// Connects with a 30 s read timeout and Nagle disabled.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the address does not accept the connection.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one request and returns `(status, body)`. The connection
    /// stays open for the next call.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on socket failure or a response this minimal client
    /// cannot parse (no status line, missing `Content-Length`).
    pub fn call(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: pecan\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(request.as_bytes())?;

        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad_response("connection closed mid-response"));
            }
            buf.extend_from_slice(&chunk[..n]);
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
        };
        let header = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let status: u16 = header
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_response("malformed status line"))?;
        let content_length: usize = header
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .ok_or_else(|| bad_response("missing content-length"))?;
        while buf.len() < head_end + content_length {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad_response("connection closed mid-body"));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        let body =
            String::from_utf8_lossy(&buf[head_end..head_end + content_length]).into_owned();
        Ok((status, body))
    }
}

impl HttpClient {
    /// Posts one prediction to `model` (`None` = the server's default
    /// model): formats `input` as the JSON wire array, routes to the
    /// model's predict endpoint, and returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// As for [`HttpClient::call`].
    pub fn predict(&mut self, model: Option<&str>, input: &[f32]) -> io::Result<(u16, String)> {
        let body = crate::json::format_f32_array(input);
        self.call("POST", &predict_path(model), &body)
    }

    /// Fetches `model`'s health/contract document (`None` = default).
    ///
    /// # Errors
    ///
    /// As for [`HttpClient::call`].
    pub fn healthz(&mut self, model: Option<&str>) -> io::Result<(u16, String)> {
        self.call("GET", &route_path(model, "healthz"), "")
    }
}

fn bad_response(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_routes() {
        assert_eq!(predict_path(None), "/predict");
        assert_eq!(predict_path(Some("lenet")), "/models/lenet/predict");
        assert_eq!(route_path(Some("m"), "stats"), "/models/m/stats");
        assert_eq!(route_path(None, "healthz"), "/healthz");
    }
}

//! Prometheus text exposition (version 0.0.4) rendering and a small
//! scrape parser used by `loadgen` and tests to read values back.
//!
//! [`PromText`] builds the page family by family: `family()` writes the
//! `# HELP`/`# TYPE` header, then `sample()`/`histogram()` append the
//! series. Keeping all series of a family contiguous under one header is
//! required by the format; callers are responsible for emitting each
//! family exactly once.

use super::hist::HistogramSnapshot;

/// Prometheus metric kinds used by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonically increasing counter.
    Counter,
    /// Value that can go up and down.
    Gauge,
    /// `_bucket`/`_sum`/`_count` series.
    Histogram,
}

impl PromKind {
    fn as_str(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Histogram => "histogram",
        }
    }
}

/// Incremental Prometheus text-format builder.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// Empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a metric family: one `# HELP` + `# TYPE` pair. All of the
    /// family's samples must follow before the next `family()` call.
    pub fn family(&mut self, name: &str, kind: PromKind, help: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind.as_str());
        self.out.push('\n');
    }

    /// Appends one sample line: `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        _ => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        if value == f64::INFINITY {
            self.out.push_str("+Inf");
        } else {
            self.out.push_str(&format!("{value}"));
        }
        self.out.push('\n');
    }

    /// Appends a full histogram — cumulative `_bucket{le=…}` lines over
    /// the occupied buckets, a `+Inf` bucket, `_sum`, and `_count`.
    /// Recorded values are multiplied by `scale` on the way out (e.g.
    /// `1e-9` turns nanoseconds into Prometheus-conventional seconds).
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        scale: f64,
    ) {
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (_, ceil, count) in snap.nonzero_buckets() {
            cumulative += count;
            let le = format!("{}", ceil as f64 * scale);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&bucket_name, &with_le, cumulative as f64);
        }
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.sample(&bucket_name, &with_le, snap.count() as f64);
        self.sample(&format!("{name}_sum"), labels, snap.sum() as f64 * scale);
        self.sample(&format!("{name}_count"), labels, snap.count() as f64);
    }

    /// The rendered page.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Reads one sample back out of a scrape: the value of the first
/// `name{…}` line whose label set contains every `(key, value)` pair in
/// `labels`. Used by `loadgen` (server p99 cross-check) and the e2e
/// tests; it is a matcher over well-formed pages, not a validator.
pub fn find_sample(text: &str, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let rest = match line.strip_prefix(name) {
            Some(r) => r,
            None => continue,
        };
        let (label_part, value_part) = if let Some(r) = rest.strip_prefix('{') {
            match r.find('}') {
                Some(end) => (&r[..end], r[end + 1..].trim()),
                None => continue,
            }
        } else if rest.starts_with(' ') {
            ("", rest.trim())
        } else {
            continue; // longer metric name sharing the prefix
        };
        let all_present = labels
            .iter()
            .all(|(k, v)| label_part.contains(&format!("{k}=\"{v}\"")));
        if all_present {
            return value_part.parse::<f64>().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::hist::Histogram;

    #[test]
    fn renders_families_samples_and_histograms() {
        let h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(100);
        let mut page = PromText::new();
        page.family("lat", PromKind::Histogram, "latency");
        page.histogram("lat", &[("model", "mlp")], &h.snapshot(), 1.0);
        page.family("up", PromKind::Gauge, "is up");
        page.sample("up", &[], 1.0);
        let text = page.finish();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{model=\"mlp\",le=\"5\"} 2"));
        assert!(text.contains("lat_bucket{model=\"mlp\",le=\"+Inf\"} 3"));
        assert_eq!(find_sample(&text, "lat_count", &[("model", "mlp")]), Some(3.0));
        assert_eq!(find_sample(&text, "lat_sum", &[("model", "mlp")]), Some(110.0));
        assert_eq!(find_sample(&text, "up", &[]), Some(1.0));
        assert_eq!(find_sample(&text, "lat_count", &[("model", "other")]), None);
        assert_eq!(find_sample(&text, "missing", &[]), None);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut page = PromText::new();
        page.sample("m", &[("k", "a\"b\\c\nd")], 2.0);
        assert_eq!(page.finish(), "m{k=\"a\\\"b\\\\c\\nd\"} 2\n");
    }
}

//! Bounded lock-free ring-buffer flight recorder for per-request spans.
//!
//! The newest N completed requests are kept in fixed memory and dumped by
//! the `/debug/requests` route. Writers claim a slot with one
//! `fetch_add` on the head counter and publish through a seqlock (an odd
//! sequence while the slot's fields are being stored, even when
//! consistent), so recording never blocks a request and never allocates;
//! readers simply skip slots caught mid-write. Under wrap-around the
//! oldest records are overwritten — this is a flight recorder, not an
//! audit log.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// `model` value for records not tied to a model (admin routes, parse
/// errors).
pub const NO_MODEL: u64 = u64::MAX;

/// One completed request span: who, where, and how long each leg took.
///
/// All fields are plain integers so the record can live in atomic slots;
/// the `/debug/requests` dump resolves `model` to a name. Times are in
/// microseconds; zero means "leg not applicable" (e.g. a request that
/// never reached a scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Request ID, minted at parse time, unique per server.
    pub id: u64,
    /// Generation tag of the connection the request arrived on.
    pub conn_gen: u64,
    /// Registry index of the model that served it, or [`NO_MODEL`].
    pub model: u64,
    /// HTTP status of the response.
    pub status: u64,
    /// ID of the batch the request rode in (0 when it never batched).
    pub batch_id: u64,
    /// Size of that batch.
    pub batch_size: u64,
    /// Time spent queued before its batch started, µs.
    pub queue_us: u64,
    /// Time from batch start to answer (inference + dispatch), µs.
    pub infer_us: u64,
    /// Submit→answer latency, µs.
    pub total_us: u64,
    /// Completion timestamp, µs since the recorder was created.
    pub t_us: u64,
}

const FIELDS: usize = 10;

impl TraceRecord {
    fn to_words(self) -> [u64; FIELDS] {
        [
            self.id,
            self.conn_gen,
            self.model,
            self.status,
            self.batch_id,
            self.batch_size,
            self.queue_us,
            self.infer_us,
            self.total_us,
            self.t_us,
        ]
    }

    fn from_words(w: [u64; FIELDS]) -> Self {
        Self {
            id: w[0],
            conn_gen: w[1],
            model: w[2],
            status: w[3],
            batch_id: w[4],
            batch_size: w[5],
            queue_us: w[6],
            infer_us: w[7],
            total_us: w[8],
            t_us: w[9],
        }
    }
}

/// One ring slot: a seqlock word plus the record's fields.
///
/// `seq` is `2·n + 1` while logical record `n` is being stored and
/// `2·n + 2` once it is consistent; `0` means never written. A reader
/// that sees the same even `seq` before and after reading the fields got
/// a torn-free record.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; FIELDS],
}

/// Fixed-capacity, lock-free ring buffer of [`TraceRecord`]s.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
    start: Instant,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            // ordering: Relaxed — debug peek at the monotone counter.
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// Recorder keeping the newest `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        let slots: Vec<Slot> = (0..capacity.max(1)).map(|_| Slot::default()).collect();
        Self { slots: slots.into_boxed_slice(), head: AtomicU64::new(0), start: Instant::now() }
    }

    /// Microseconds since the recorder was created — the time base of
    /// [`TraceRecord::t_us`].
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Total records ever written (not capped by capacity).
    pub fn recorded(&self) -> u64 {
        // ordering: Relaxed — pairs with `record`'s Relaxed fetch_add; a
        // monotone counter read in isolation needs no ordering.
        self.head.load(Ordering::Relaxed)
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends one record. Lock-free: one `fetch_add` claims a logical
    /// position, then the slot publishes through its seqlock. A writer
    /// lapped mid-store simply produces a torn slot that readers skip.
    pub fn record(&self, record: &TraceRecord) {
        // ordering: Relaxed — the fetch_add only claims a unique logical
        // position; publication ordering is carried by `seq` below, and
        // `dump` treats its own `head` read as a racy snapshot.
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        slot.seq.store(2 * n + 1, Ordering::Release);
        // ordering: Relaxed — word stores are fenced by the surrounding
        // Release stores of `seq` and pair with `dump`'s Acquire loads:
        // a reader seeing `2n + 2` before and after its copy saw every
        // word of record n.
        for (dst, src) in slot.words.iter().zip(record.to_words()) {
            dst.store(src, Ordering::Relaxed);
        }
        slot.seq.store(2 * n + 2, Ordering::Release);
    }

    /// Copies out every consistent record, oldest first. Slots caught
    /// mid-write (or overwritten while being read) are skipped rather
    /// than returned torn.
    pub fn dump(&self) -> Vec<TraceRecord> {
        // ordering: Relaxed — racy snapshot of `record`'s position
        // counter; staleness only under-reads the newest slots, and slot
        // consistency is carried entirely by `seq` below.
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let first = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - first) as usize);
        for n in first..head {
            let slot = &self.slots[(n % cap) as usize];
            let before = slot.seq.load(Ordering::Acquire);
            if before != 2 * n + 2 {
                continue; // torn, lapped, or never written
            }
            let mut words = [0u64; FIELDS];
            // ordering: Relaxed — bracketed by the two Acquire loads of
            // `seq`, pairing with `record`'s Release stores; an unchanged
            // `seq` across the copy proves the words are from record n.
            for (dst, src) in words.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) == before {
                out.push(TraceRecord::from_words(words));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> TraceRecord {
        TraceRecord {
            id,
            conn_gen: id * 7,
            model: 0,
            status: 200,
            batch_id: id / 3,
            batch_size: 2,
            queue_us: 10,
            infer_us: 20,
            total_us: 31,
            t_us: id,
        }
    }

    #[test]
    fn keeps_newest_capacity_records_in_order() {
        let r = FlightRecorder::new(4);
        for id in 0..10 {
            r.record(&rec(id));
        }
        let dump = r.dump();
        assert_eq!(dump.iter().map(|t| t.id).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(dump[0], rec(6));
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn partial_fill_dumps_only_written_slots() {
        let r = FlightRecorder::new(8);
        r.record(&rec(1));
        r.record(&rec(2));
        assert_eq!(r.dump().len(), 2);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_records() {
        // Writers store self-consistent records (every field derived from
        // id); any torn read would break the relation.
        let r = std::sync::Arc::new(FlightRecorder::new(16));
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..500 {
                        r.record(&rec(t * 1000 + i));
                    }
                });
            }
            for _ in 0..50 {
                for tr in r.dump() {
                    assert_eq!(tr.conn_gen, tr.id * 7, "torn record: {tr:?}");
                    assert_eq!(tr.t_us, tr.id);
                }
            }
        });
        assert_eq!(r.recorded(), 2000);
    }
}

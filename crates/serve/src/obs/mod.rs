//! Serving observability: per-stage timing, a request flight recorder,
//! and Prometheus text export, on top of the workspace-wide substrate
//! in [`pecan_obs`].
//!
//! The general-purpose primitives — the lock-free log-bucketed
//! [`Histogram`] and the `PECAN_LOG`-leveled logfmt [`log`] macros —
//! started life in this module and now live in [`pecan_obs`] so every
//! compute crate (tensor, index, core) can share them and the span
//! tracer. They are re-exported here unchanged ([`hist`], [`log`],
//! [`Histogram`], [`HistogramSnapshot`], [`Level`]), so existing
//! `pecan_serve::obs::…` paths keep working; the
//! [`log_error!`](crate::log_error) … [`log_trace!`](crate::log_trace)
//! macros are likewise re-exported at the crate root.
//!
//! What remains serve-only is the serving-shaped instrumentation:
//!
//! - [`recorder`] — seqlock ring-buffer [`FlightRecorder`] keeping the
//!   newest N per-request [`TraceRecord`] spans, dumped by
//!   `/debug/requests`. Its request ids double as the `args.id` of
//!   `serve.request` spans in `/debug/trace` captures, joining the two
//!   views.
//! - [`metrics`] — [`PromText`](metrics::PromText) renders every
//!   counter, gauge and histogram in Prometheus text exposition format
//!   for the `/metrics` route served by both front ends.
//! - [`StageObserver`] — the per-stage wall-time sink threaded through
//!   [`crate::FrozenEngine::infer_observed`], implemented by
//!   [`crate::ServeStats`] with named per-stage histograms.
//!
//! Everything on the hot path stays std-only and allocation-free.

pub use pecan_obs::hist;
pub use pecan_obs::log;
pub mod metrics;
pub mod recorder;

pub use hist::{Histogram, HistogramSnapshot};
pub use log::Level;
pub use recorder::{FlightRecorder, TraceRecord, NO_MODEL};

/// Sink for per-stage wall time inside an engine's inference loop.
///
/// [`crate::FrozenEngine::infer_observed`] calls `record_stage` once per
/// stage per batch with the stage's kind name (e.g. `"lut-conv"`) and
/// its wall time. Implementations must be cheap and lock-free — the call
/// sits on the inference hot path. [`crate::ServeStats`] implements this
/// by recording into its named per-stage histograms.
pub trait StageObserver: Send + Sync {
    /// Accounts `wall_ns` nanoseconds of work to the stage kind `stage`.
    fn record_stage(&self, stage: &'static str, wall_ns: u64);
}

//! Serving observability: lock-free latency histograms, per-stage
//! timing, a request flight recorder, a structured logger, and
//! Prometheus text export.
//!
//! Everything here is std-only and allocation-free on the hot path:
//!
//! - [`hist`] — fixed-memory log-bucketed [`Histogram`] (relaxed atomics,
//!   mergeable, exact-rank quantiles with ≤ 1/32 relative overshoot),
//!   threaded through [`crate::ServeStats`] for queue/infer/total
//!   latency and batch-size distributions per model, plus named
//!   per-stage histograms fed by [`StageObserver`].
//! - [`recorder`] — seqlock ring-buffer [`FlightRecorder`] keeping the
//!   newest N per-request [`TraceRecord`] spans, dumped by
//!   `/debug/requests`.
//! - [`log`] — `PECAN_LOG`-leveled logfmt stderr logger behind the
//!   [`log_error!`](crate::log_error) … [`log_trace!`](crate::log_trace)
//!   macros.
//! - [`metrics`] — [`PromText`](metrics::PromText) renders every
//!   counter, gauge and histogram in Prometheus text exposition format
//!   for the `/metrics` route served by both front ends.

pub mod hist;
pub mod log;
pub mod metrics;
pub mod recorder;

pub use hist::{Histogram, HistogramSnapshot};
pub use log::Level;
pub use recorder::{FlightRecorder, TraceRecord, NO_MODEL};

/// Sink for per-stage wall time inside an engine's inference loop.
///
/// [`crate::FrozenEngine::infer_observed`] calls `record_stage` once per
/// stage per batch with the stage's kind name (e.g. `"lut-conv"`) and
/// its wall time. Implementations must be cheap and lock-free — the call
/// sits on the inference hot path. [`crate::ServeStats`] implements this
/// by recording into its named per-stage histograms.
pub trait StageObserver: Send + Sync {
    /// Accounts `wall_ns` nanoseconds of work to the stage kind `stage`.
    fn record_stage(&self, stage: &'static str, wall_ns: u64);
}

//! End-to-end observability battery over real TCP, both front ends:
//! `/metrics` is valid Prometheus text exposition whose numbers agree
//! with `/stats`, `/debug/requests` replays recent request spans, and the
//! threaded front end maintains the same connection-state gauges the
//! event loop does (the historical gap this PR closes).

use pecan_serve::client::HttpClient;
use pecan_serve::obs::metrics::find_sample;
use pecan_serve::{
    demo, json, BatchRunner, EngineRegistry, SchedulerConfig, ServeError, Server, ServerConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

fn front_end_flags() -> Vec<bool> {
    if pecan_serve::event_loop_supported() {
        vec![false, true]
    } else {
        vec![false]
    }
}

fn call(client: &mut HttpClient, method: &str, path: &str, body: &str) -> (u16, String) {
    client.call(method, path, body).expect("request")
}

fn wait_until(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for: {what}");
}

/// Structural validity of the text exposition: every line is a comment
/// with a known form or a `name{labels} value` sample with a float value;
/// `# TYPE` appears at most once per family.
fn assert_valid_exposition(text: &str) {
    let mut typed = std::collections::BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            let kind = words.next().unwrap_or("");
            let family = words.next().unwrap_or("");
            assert!(
                (kind == "HELP" || kind == "TYPE") && !family.is_empty(),
                "malformed comment line: {line}"
            );
            if kind == "TYPE" {
                assert!(typed.insert(family.to_string()), "family typed twice: {family}");
                let t = words.next().unwrap_or("");
                assert!(
                    t == "counter" || t == "gauge" || t == "histogram",
                    "unknown type in: {line}"
                );
            }
            continue;
        }
        assert!(!line.is_empty(), "blank line inside exposition");
        // Sample line: name[{labels}] value — labels may contain spaces
        // only inside quotes, and our values never do, so splitting on
        // the *last* space is safe.
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line}");
        });
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable sample value in: {line}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in: {line}"
        );
        if let Some(open) = series.find('{') {
            assert!(series.ends_with('}'), "unclosed label set in: {line}");
            let labels = &series[open + 1..series.len() - 1];
            for pair in labels.split("\",") {
                assert!(pair.contains("=\""), "malformed label in: {line}");
            }
        }
    }
}

/// All `name{…le="…"}` bucket samples of one histogram series, in file
/// order, as `(le, cumulative_count)`.
fn buckets_of(text: &str, name: &str, model: &str) -> Vec<(f64, u64)> {
    let prefix = format!("{name}_bucket{{");
    let model_label = format!("model=\"{model}\"");
    text.lines()
        .filter(|l| l.starts_with(&prefix) && l.contains(&model_label))
        .map(|l| {
            let le_start = l.find("le=\"").expect("le label") + 4;
            let le_end = l[le_start..].find('"').unwrap() + le_start;
            let le = match &l[le_start..le_end] {
                "+Inf" => f64::INFINITY,
                s => s.parse().expect("le value"),
            };
            let count: u64 = l.rsplit_once(' ').unwrap().1.parse().expect("bucket count");
            (le, count)
        })
        .collect()
}

#[test]
fn metrics_exposition_is_valid_and_agrees_with_stats() {
    for event_loop in front_end_flags() {
        let engine = Arc::new(demo::mlp_engine(77));
        let server = Server::start(
            Arc::clone(&engine),
            ServerConfig {
                scheduler: SchedulerConfig { max_batch: 4, workers: 1, ..Default::default() },
                event_loop,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let mut client = HttpClient::connect(server.local_addr()).expect("connect");

        // Traffic: five good predictions, one 400, one 404.
        let input: Vec<f32> = (0..engine.input_len()).map(|i| (i as f32 * 0.1).cos()).collect();
        let body = json::format_f32_array(&input);
        for _ in 0..5 {
            let (status, answer) = call(&mut client, "POST", "/predict", &body);
            assert_eq!(status, 200, "{answer}");
        }
        assert_eq!(call(&mut client, "POST", "/predict", "[1.0]").0, 400);
        assert_eq!(call(&mut client, "GET", "/nope", "").0, 404);

        let (status, stats) = call(&mut client, "GET", "/stats", "");
        assert_eq!(status, 200);
        let completed = json::number_field(&stats, "completed").unwrap();
        assert_eq!(completed, 5.0);

        let (status, metrics) = call(&mut client, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert_valid_exposition(&metrics);

        let sample = |name: &str, labels: &[(&str, &str)]| {
            find_sample(&metrics, name, labels)
                .unwrap_or_else(|| panic!("missing {name} {labels:?} in:\n{metrics}"))
        };

        // Counters agree with /stats.
        assert_eq!(sample("pecan_requests_completed_total", &[("model", "mlp")]), completed);
        assert_eq!(sample("pecan_requests_failed_total", &[("model", "mlp")]), 0.0);
        assert_eq!(sample("pecan_request_latency_seconds_count", &[("model", "mlp")]), completed);
        assert!(sample("pecan_batches_total", &[("model", "mlp")]) >= 1.0);
        assert_eq!(sample("pecan_batch_size_count", &[("model", "mlp")]), {
            sample("pecan_batches_total", &[("model", "mlp")])
        });
        // Front-end counters: 5 predicts + 400 + 404 + /stats = 8 before
        // the /metrics request itself was counted.
        assert!(sample("pecan_http_requests_total", &[]) >= 8.0);
        assert!(sample("pecan_connections_active", &[]) >= 1.0);

        // Histogram buckets: cumulative, monotone, +Inf == _count.
        for family in
            ["pecan_request_latency_seconds", "pecan_queue_latency_seconds", "pecan_infer_latency_seconds"]
        {
            let buckets = buckets_of(&metrics, family, "mlp");
            assert!(!buckets.is_empty(), "{family} has no buckets");
            for pair in buckets.windows(2) {
                assert!(pair[0].0 < pair[1].0, "{family} le values not ascending");
                assert!(pair[0].1 <= pair[1].1, "{family} buckets not cumulative");
            }
            let (last_le, last_count) = *buckets.last().unwrap();
            assert!(last_le.is_infinite(), "{family} missing +Inf bucket");
            assert_eq!(
                last_count as f64,
                sample(&format!("{family}_count"), &[("model", "mlp")]),
                "{family} +Inf != _count"
            );
        }

        // Per-stage timing: the demo MLP runs lut-linear and relu stages.
        for stage in ["lut-linear", "relu"] {
            assert!(
                sample(
                    "pecan_stage_latency_seconds_count",
                    &[("model", "mlp"), ("stage", stage)],
                ) >= 1.0,
                "stage {stage} never timed"
            );
        }

        // Quantile gauges for dashboards that don't do histogram math.
        for q in ["0.5", "0.9", "0.99", "0.999"] {
            let v = sample(
                "pecan_request_latency_quantile_seconds",
                &[("model", "mlp"), ("quantile", q)],
            );
            assert!(v > 0.0, "quantile {q} gauge is zero");
        }

        server.stop();
    }
}

/// `/metrics` answers with the Prometheus content type, not JSON.
#[test]
fn metrics_content_type_is_prometheus_text() {
    for event_loop in front_end_flags() {
        let server = Server::start(
            Arc::new(demo::mlp_engine(78)),
            ServerConfig { event_loop, ..ServerConfig::default() },
        )
        .expect("bind");
        let mut s = TcpStream::connect(server.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n").expect("write");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(
            response.contains("\r\nContent-Type: text/plain; version=0.0.4\r\n"),
            "missing Prometheus content type: {response}"
        );
        server.stop();
    }
}

#[test]
fn debug_requests_replays_recent_spans() {
    for event_loop in front_end_flags() {
        let engine = Arc::new(demo::mlp_engine(79));
        let server = Server::start(
            Arc::clone(&engine),
            ServerConfig { event_loop, flight_records: 8, ..ServerConfig::default() },
        )
        .expect("bind");
        let mut client = HttpClient::connect(server.local_addr()).expect("connect");

        let input: Vec<f32> = (0..engine.input_len()).map(|i| (i as f32 * 0.2).sin()).collect();
        let body = json::format_f32_array(&input);
        for _ in 0..3 {
            assert_eq!(call(&mut client, "POST", "/predict", &body).0, 200);
        }
        assert_eq!(call(&mut client, "GET", "/nope", "").0, 404);

        let (status, dump) = call(&mut client, "GET", "/debug/requests", "");
        assert_eq!(status, 200);
        assert_eq!(json::number_field(&dump, "capacity").unwrap(), 8.0);
        // 3 predicts + the 404 are recorded; the /debug/requests request
        // itself completes after the dump is taken.
        assert_eq!(json::number_field(&dump, "recorded").unwrap(), 4.0);
        // Prediction spans carry the model, status and batch legs.
        assert!(dump.contains("\"model\":\"mlp\""), "{dump}");
        assert!(dump.contains("\"status\":200"), "{dump}");
        assert!(dump.contains("\"batch_size\":1"), "{dump}");
        // The 404 has no model and never reached a scheduler.
        assert!(dump.contains("\"status\":404"), "{dump}");
        assert!(dump.contains("\"model\":null"), "{dump}");
        // Request IDs are unique and 1-based.
        let mut ids: Vec<&str> = dump
            .match_indices("\"id\":")
            .map(|(i, _)| {
                let rest = &dump[i + 5..];
                &rest[..rest.find(',').unwrap()]
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "duplicate request ids: {dump}");

        server.stop();
    }
}

/// `GET /debug/trace?ms=N` on both front ends: drives traffic during the
/// capture window and checks the returned Chrome trace JSON carries spans
/// from the request, stage and scheduler layers, then that the window
/// parameter is validated. The event loop delivers the capture through
/// its completion queue (a helper thread, never the loop itself), so this
/// also proves the loop keeps answering while a capture is in flight.
#[test]
fn debug_trace_captures_spans_on_both_front_ends() {
    for event_loop in front_end_flags() {
        let engine = Arc::new(demo::mlp_engine(81));
        let server = Server::start(
            Arc::clone(&engine),
            ServerConfig { event_loop, ..ServerConfig::default() },
        )
        .expect("bind");
        let addr = server.local_addr().to_string();

        // Background traffic for the capture window to observe.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let driver = {
            let stop = Arc::clone(&stop);
            let input: Vec<f32> =
                (0..engine.input_len()).map(|i| (i as f32 * 0.3).sin()).collect();
            let body = json::format_f32_array(&input);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(&addr).expect("connect");
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (status, _) = client.call("POST", "/predict", &body).expect("predict");
                    assert_eq!(status, 200);
                }
            })
        };

        let mut client = HttpClient::connect(&addr).expect("connect");
        let (status, trace) = call(&mut client, "GET", "/debug/trace?ms=250", "");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        driver.join().expect("driver");
        assert_eq!(status, 200, "{trace}");
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\""), "{trace}");
        assert!(trace.ends_with("]}\n") || trace.ends_with("]}"), "{trace}");
        for needle in ["serve.request", "stage.", "scheduler.form", "scheduler.batch"] {
            assert!(
                trace.contains(needle),
                "front_end event_loop={event_loop}: no {needle} span in capture:\n{trace}"
            );
        }
        if event_loop {
            assert!(trace.contains("event_loop.poll"), "{trace}");
        }
        // Balanced B/E by construction: equal counts in any full export.
        let begins = trace.matches("\"ph\":\"B\"").count();
        let ends = trace.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends, "unbalanced events: {begins} B vs {ends} E");
        assert!(begins > 0, "capture recorded nothing");

        // Window validation: 0, out-of-range and garbage all answer 400.
        for bad in ["/debug/trace?ms=0", "/debug/trace?ms=99999", "/debug/trace?ms=abc"] {
            assert_eq!(call(&mut client, "GET", bad, "").0, 400, "{bad}");
        }

        // Tracing is restored to disabled after the capture.
        assert!(!pecan_obs::tracing_enabled());
        server.stop();
    }
}

/// Signals `entered` when a batch starts, then blocks until released —
/// pins the worker so connection gauges can be observed mid-request.
struct GatedRunner {
    entered: mpsc::Sender<()>,
    release: Mutex<mpsc::Receiver<()>>,
}

impl BatchRunner for GatedRunner {
    fn input_len(&self) -> usize {
        4
    }
    fn output_len(&self) -> usize {
        1
    }
    fn run_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ServeError> {
        let _ = self.entered.send(());
        let _ = self.release.lock().unwrap().recv();
        Ok(inputs.iter().map(|i| vec![i.iter().sum()]).collect())
    }
}

/// The satellite fix under test: the **threaded** front end now retags
/// connections through reading → handling → writing and maintains the
/// inflight gauge, so `/stats` and `/metrics` gauges mean the same thing
/// on both front ends (they used to stay zero on threads).
#[test]
fn threaded_front_end_maintains_connection_gauges() {
    let (entered_tx, entered) = mpsc::channel();
    let (release, release_rx) = mpsc::channel();
    let runner = Arc::new(GatedRunner { entered: entered_tx, release: Mutex::new(release_rx) });
    let registry = EngineRegistry::new();
    registry
        .register_runner_as(
            "gated",
            runner,
            SchedulerConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_capacity: 8,
                workers: 1,
            },
        )
        .expect("register double");
    let server = Server::start_registry(
        registry,
        ServerConfig { event_loop: false, ..ServerConfig::default() },
    )
    .expect("bind");

    // Pin one request inside the worker.
    let mut pinned = TcpStream::connect(server.local_addr()).expect("connect");
    pinned.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    pinned
        .write_all(b"POST /predict HTTP/1.1\r\nContent-Length: 9\r\n\r\n[1,2,3,4]")
        .expect("write");
    entered.recv_timeout(Duration::from_secs(5)).expect("worker entered run_batch");
    wait_until("handler tagged handling with one inflight request", || {
        let st = server.conn_stats();
        st.handling == 1 && st.inflight == 1
    });

    // The same gauges are visible through /metrics while the request is
    // still in flight.
    let mut probe = HttpClient::connect(server.local_addr()).expect("connect probe");
    let (status, metrics) = call(&mut probe, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(find_sample(&metrics, "pecan_inflight_requests", &[]), Some(1.0));
    assert_eq!(
        find_sample(&metrics, "pecan_connections_state", &[("state", "handling")]),
        Some(1.0)
    );

    // Release: the answer arrives and every gauge returns to rest.
    drop(release);
    let mut answer = [0u8; 512];
    let n = pinned.read(&mut answer).expect("read answer");
    assert!(std::str::from_utf8(&answer[..n]).unwrap().starts_with("HTTP/1.1 200 OK\r\n"));
    drop(pinned);
    wait_until("gauges back to rest after close", || {
        let st = server.conn_stats();
        st.handling == 0 && st.writing == 0 && st.inflight == 0 && st.active <= 1
    });
    server.stop();
}

//! End-to-end front-end test over real TCP: a raw HTTP/1.1 client drives
//! `/healthz`, `/predict`, `/stats` and `/shutdown` against an in-process
//! server, asserting that served predictions equal in-process engine
//! predictions **bit-for-bit** (the wire format uses shortest-round-trip
//! float formatting, so nothing is lost in transit).

use pecan_serve::client::HttpClient;
use pecan_serve::{demo, json, SchedulerConfig, Server, ServerConfig};
use std::net::TcpStream;
use std::sync::Arc;

/// The crate's own minimal client (the same one `loadgen` uses).
struct Client {
    inner: HttpClient,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        Self { inner: HttpClient::connect(addr).expect("connect") }
    }

    fn call(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        self.inner.call(method, path, body).expect("request")
    }
}

#[test]
fn full_protocol_round_trip() {
    let engine = Arc::new(demo::mlp_engine(31));
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            scheduler: SchedulerConfig { max_batch: 8, workers: 1, ..Default::default() },
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let mut client = Client::connect(addr);

    // /healthz advertises the model contract.
    let (status, body) = client.call("GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(json::number_field(&body, "input_len").unwrap() as usize, engine.input_len());
    assert_eq!(json::number_field(&body, "output_len").unwrap() as usize, engine.output_len());

    // /predict serves bit-identical results over the wire (keep-alive:
    // several requests on one connection).
    for k in 0..3 {
        let input: Vec<f32> =
            (0..engine.input_len()).map(|i| ((i + k) as f32 * 0.37).sin()).collect();
        let (status, body) = client.call("POST", "/predict", &json::format_f32_array(&input));
        assert_eq!(status, 200, "{body}");
        let served = json::array_field(&body, "output").unwrap();
        let direct = engine.predict(&input).unwrap();
        assert_eq!(served.len(), direct.len());
        for (a, b) in served.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits(), "wire changed bits");
        }
        assert!(json::number_field(&body, "batch_size").unwrap() >= 1.0);
    }

    // Errors are typed at the HTTP layer.
    let (status, _) = client.call("POST", "/predict", "[1.0, 2.0]"); // wrong length
    assert_eq!(status, 400);
    let (status, _) = client.call("POST", "/predict", "not json");
    assert_eq!(status, 400);
    let (status, _) = client.call("GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = client.call("DELETE", "/predict", "");
    assert_eq!(status, 405);

    // /stats reflects the traffic (3 ok predictions; failures never entered
    // the queue).
    let (status, body) = client.call("GET", "/stats", "");
    assert_eq!(status, 200);
    assert_eq!(json::number_field(&body, "completed").unwrap() as u64, 3);
    assert_eq!(json::number_field(&body, "rejected").unwrap() as u64, 0);

    // Parallel clients against the same engine.
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            let input = vec![t as f32 * 0.2 - 0.3; engine.input_len()];
            let (status, body) = c.call("POST", "/predict", &json::format_f32_array(&input));
            assert_eq!(status, 200, "{body}");
            let served = json::array_field(&body, "output").unwrap();
            let direct = engine.predict(&input).unwrap();
            for (a, b) in served.iter().zip(&direct) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    server.stop();
    // After stop, new connections are refused or dropped without answers —
    // either way, no hang: this connect may fail, which is the point.
    let _ = TcpStream::connect(addr);
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let engine = Arc::new(demo::mlp_engine(32));
    let server = Server::start(engine, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let waiter = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr);
    let (status, body) = client.call("POST", "/shutdown", "");
    assert_eq!(status, 200, "{body}");
    waiter.join().expect("run() returns after /shutdown");
}

#[test]
fn lenet_served_over_http_matches_engine() {
    let engine = Arc::new(demo::lenet_engine(33));
    let server = Server::start(engine.clone(), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr());
    let input: Vec<f32> = (0..engine.input_len()).map(|i| (i as f32 * 0.011).cos()).collect();
    let (status, body) = client.call("POST", "/predict", &json::format_f32_array(&input));
    assert_eq!(status, 200, "{body}");
    let served = json::array_field(&body, "output").unwrap();
    let direct = engine.predict(&input).unwrap();
    for (a, b) in served.iter().zip(&direct) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    server.stop();
}

//! Snapshot format pins: save→load→predict parity (bit-exact, by property
//! test) and typed, panic-free errors for every corruption mode.

use pecan_serve::{demo, FrozenEngine, SnapshotError, SNAPSHOT_VERSION};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "bit mismatch at {i}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Reloaded engines answer bit-identically, for MLP and conv models.
    #[test]
    fn save_load_predict_parity(seed in 0u64..5, conv in proptest::bool::ANY) {
        let engine = if conv { demo::lenet_engine(seed) } else { demo::mlp_engine(seed) };
        let bytes = engine.snapshot_bytes();
        let reloaded = FrozenEngine::from_snapshot_bytes(&bytes).unwrap();
        prop_assert_eq!(engine.input_shape(), reloaded.input_shape());
        prop_assert_eq!(engine.output_shape(), reloaded.output_shape());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        for _ in 0..3 {
            let x = pecan_tensor::uniform(&mut rng, &[engine.input_len()], -1.0, 1.0)
                .into_vec();
            assert_bits_eq(&engine.predict(&x).unwrap(), &reloaded.predict(&x).unwrap());
        }
        // serialization is stable: re-saving the reload is byte-identical
        prop_assert_eq!(bytes, reloaded.snapshot_bytes());
    }

    /// No truncation point panics, and every one is a typed error.
    #[test]
    fn any_truncation_is_a_typed_error(cut_permille in 0u32..1000) {
        let bytes = demo::mlp_engine(1).snapshot_bytes();
        let cut = (bytes.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let err = FrozenEngine::from_snapshot_bytes(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::BadMagic
                    | SnapshotError::Corrupt(_)
            ),
            "truncation at {cut} gave {err:?}"
        );
    }

    /// No single flipped byte panics; almost all are checksum mismatches.
    /// (v2: the whole-file CRC covers every byte. v3 inter-section padding
    /// is deliberately outside any checksum, so this pin uses v2.)
    #[test]
    fn any_flipped_byte_is_a_typed_error(pos_permille in 0u32..1000, flip in 1u32..256) {
        let mut bytes = demo::mlp_engine(2).snapshot_bytes_versioned(2).unwrap();
        let pos = (bytes.len() as u64 * u64::from(pos_permille) / 1000) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= flip as u8;
        prop_assert!(FrozenEngine::from_snapshot_bytes(&bytes).is_err());
    }

    /// v3: a flip anywhere inside the header region is caught by the header
    /// CRC (or by magic/version gating) before any section is touched.
    #[test]
    fn v3_header_flip_is_a_typed_error(pos_permille in 0u32..1000, flip in 1u32..256) {
        let mut bytes = demo::mlp_engine(2).snapshot_bytes();
        let header_len =
            u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let pos = (header_len as u64 * u64::from(pos_permille) / 1000) as usize;
        let pos = pos.min(header_len - 1);
        bytes[pos] ^= flip as u8;
        prop_assert!(FrozenEngine::from_snapshot_bytes(&bytes).is_err());
    }

    /// v3: a flip anywhere inside any *section payload* trips exactly that
    /// section's CRC on the copying path.
    #[test]
    fn v3_section_flip_reports_checksum_mismatch(
        section_seed in proptest::num::u64::ANY,
        pos_permille in 0u32..1000,
        flip in 1u32..256,
    ) {
        let mut bytes = demo::mlp_engine(2).snapshot_bytes();
        let info = pecan_serve::inspect_snapshot_bytes(&bytes).unwrap();
        let s = info.sections[(section_seed % info.sections.len() as u64) as usize];
        let pos = s.offset + s.byte_len as u64 * u64::from(pos_permille) / 1000;
        let pos = (pos as usize).min((s.offset + s.byte_len) as usize - 1);
        bytes[pos] ^= flip as u8;
        prop_assert!(matches!(
            FrozenEngine::from_snapshot_bytes(&bytes).unwrap_err(),
            SnapshotError::ChecksumMismatch { .. }
        ));
    }
}

#[test]
fn corrupt_magic_reports_bad_magic() {
    let mut bytes = demo::mlp_engine(1).snapshot_bytes();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        FrozenEngine::from_snapshot_bytes(&bytes).unwrap_err(),
        SnapshotError::BadMagic
    ));
}

#[test]
fn future_version_reports_unsupported_not_checksum() {
    let mut bytes = demo::mlp_engine(1).snapshot_bytes();
    bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 7).to_le_bytes());
    match FrozenEngine::from_snapshot_bytes(&bytes).unwrap_err() {
        SnapshotError::UnsupportedVersion { found } => {
            assert_eq!(found, SNAPSHOT_VERSION + 7);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn payload_flip_reports_checksum_mismatch() {
    let mut bytes = demo::mlp_engine(1).snapshot_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    assert!(matches!(
        FrozenEngine::from_snapshot_bytes(&bytes).unwrap_err(),
        SnapshotError::ChecksumMismatch { .. }
    ));
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = demo::mlp_engine(1).snapshot_bytes_versioned(2).unwrap();
    // Keep the checksum trailer last so the tamper is structural, not bit
    // rot: splice zeros in *before* the trailer and fix the checksum up.
    let trailer_at = bytes.len() - 4;
    bytes.splice(trailer_at..trailer_at, std::iter::repeat(0u8).take(8));
    let payload_len = bytes.len() - 4;
    let crc = pecan_serve::crc32(&bytes[..payload_len]);
    let end = bytes.len();
    bytes[end - 4..].copy_from_slice(&crc.to_le_bytes());
    match FrozenEngine::from_snapshot_bytes(&bytes).unwrap_err() {
        SnapshotError::Corrupt(msg) => assert!(msg.contains("trailing")),
        other => panic!("expected Corrupt(trailing), got {other:?}"),
    }
}

/// Byte offset of the input-shape *rank* field: magic(8) + version(4) +
/// name header (v2 only: u32 length + bytes).
fn input_rank_offset(bytes: &[u8]) -> usize {
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version >= 2 {
        let name_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        16 + name_len
    } else {
        12
    }
}

/// Recomputes and installs the CRC-32 trailer after a structural tamper.
fn fix_crc(bytes: &mut [u8]) {
    let payload_len = bytes.len() - 4;
    let crc = pecan_serve::crc32(&bytes[..payload_len]);
    bytes[payload_len..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn crafted_inconsistent_pipeline_is_rejected_not_a_panic() {
    // A snapshot whose checksum is valid but whose declared input shape
    // does not thread through the stages must fail at *load* time — never
    // at predict time inside a scheduler worker.
    let mut bytes = demo::mlp_engine(1).snapshot_bytes_versioned(2).unwrap();
    let dim_at = input_rank_offset(&bytes) + 4; // first dim after rank
    assert_eq!(u32::from_le_bytes(bytes[dim_at..dim_at + 4].try_into().unwrap()), 64);
    bytes[dim_at..dim_at + 4].copy_from_slice(&63u32.to_le_bytes());
    fix_crc(&mut bytes);
    match FrozenEngine::from_snapshot_bytes(&bytes).unwrap_err() {
        SnapshotError::Corrupt(msg) => {
            assert!(msg.contains("carries [63]"), "got: {msg}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn v2_round_trips_the_model_name() {
    let engine = demo::mlp_engine(4); // named "mlp"
    assert_eq!(engine.name(), Some("mlp"));
    let bytes = engine.snapshot_bytes();
    let reloaded = FrozenEngine::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(reloaded.name(), Some("mlp"));
    // renaming changes only the header, not the model
    let renamed = demo::mlp_engine(4).with_name("mlp-canary");
    let reloaded2 = FrozenEngine::from_snapshot_bytes(&renamed.snapshot_bytes()).unwrap();
    assert_eq!(reloaded2.name(), Some("mlp-canary"));
    let x = vec![0.25f32; engine.input_len()];
    assert_bits_eq(&reloaded.predict(&x).unwrap(), &reloaded2.predict(&x).unwrap());
}

#[test]
fn v1_files_still_load_bit_identically() {
    for (engine, conv) in [(demo::mlp_engine(3), false), (demo::lenet_engine(3), true)] {
        let v1 = engine.snapshot_bytes_versioned(1).unwrap();
        let loaded = FrozenEngine::from_snapshot_bytes(&v1).unwrap();
        assert_eq!(loaded.name(), None, "v1 carries no name (conv={conv})");
        assert_eq!(loaded.input_shape(), engine.input_shape());
        let mut rng = StdRng::seed_from_u64(99);
        let x = pecan_tensor::uniform(&mut rng, &[engine.input_len()], -1.0, 1.0).into_vec();
        assert_bits_eq(&engine.predict(&x).unwrap(), &loaded.predict(&x).unwrap());
        // v1 re-encoding of the reload is byte-identical (stable format)
        assert_eq!(v1, loaded.snapshot_bytes_versioned(1).unwrap());
    }
}

#[test]
fn version_0_and_future_versions_are_rejected_with_typed_errors() {
    // Stamp a future version over valid v2 bytes: even with a *valid*
    // checksum, the version gates first.
    let mut bytes = demo::mlp_engine(1).snapshot_bytes_versioned(2).unwrap();
    bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    fix_crc(&mut bytes);
    match FrozenEngine::from_snapshot_bytes(&bytes).unwrap_err() {
        SnapshotError::UnsupportedVersion { found } => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // version 0 is nonsense, not "older than 1"
    bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
    fix_crc(&mut bytes);
    assert!(matches!(
        FrozenEngine::from_snapshot_bytes(&bytes).unwrap_err(),
        SnapshotError::UnsupportedVersion { found: 0 }
    ));
}

#[test]
fn name_header_corruption_is_typed_never_a_panic() {
    // The name sits at a fixed offset only in the v2 sequential layout.
    let engine = demo::mlp_engine(1);
    let base = engine.snapshot_bytes_versioned(2).unwrap();

    // Declared name length beyond the whole payload → truncation. Needs a
    // model small enough that an in-limit length (≤ 4096) overruns it.
    let tiny = {
        use pecan_core::{PecanLinear, PecanVariant, PqLayerSettings};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = pecan_nn::Sequential::new();
        net.push(Box::new(
            PecanLinear::new(
                &mut rng,
                PecanVariant::Distance,
                PqLayerSettings::new(8, 4, 1.0),
                16,
                5,
            )
            .unwrap(),
        ));
        FrozenEngine::compile(&net, &[16]).unwrap().with_name("tiny")
    };
    let mut bytes = tiny.snapshot_bytes_versioned(2).unwrap();
    assert!(bytes.len() < 4000, "tiny model must be smaller than the declared name");
    bytes[12..16].copy_from_slice(&4000u32.to_le_bytes());
    fix_crc(&mut bytes);
    assert!(matches!(
        FrozenEngine::from_snapshot_bytes(&bytes).unwrap_err(),
        SnapshotError::Truncated { .. }
    ));

    // Absurd declared length → bounded, typed Corrupt (no huge allocation).
    let mut bytes = base.clone();
    bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    fix_crc(&mut bytes);
    match FrozenEngine::from_snapshot_bytes(&bytes).unwrap_err() {
        SnapshotError::Corrupt(msg) => assert!(msg.contains("name"), "got: {msg}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // Length shortened by one: the name eats into the shape fields and the
    // stream no longer lines up — typed error, never a panic.
    let mut bytes = base;
    let len = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    bytes[12..16].copy_from_slice(&(len - 1).to_le_bytes());
    fix_crc(&mut bytes);
    assert!(FrozenEngine::from_snapshot_bytes(&bytes).is_err());

    // Non-UTF-8 name bytes → Corrupt.
    let mut bytes = engine.snapshot_bytes_versioned(2).unwrap();
    bytes[16] = 0xFF; // first name byte ("mlp" → invalid sequence)
    fix_crc(&mut bytes);
    match FrozenEngine::from_snapshot_bytes(&bytes).unwrap_err() {
        SnapshotError::Corrupt(msg) => assert!(msg.contains("UTF-8"), "got: {msg}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn v2_to_v3_conversion_is_bit_identical_at_the_infer_level() {
    // The snapshot-tool convert path: load a v2 file, re-encode as v3.
    // The converted engine must answer bit-identically — the layouts
    // differ ([d,p] codebooks vs [p,d] CAM rows) but the bits must not.
    for engine in [demo::mlp_engine(5), demo::lenet_engine(5)] {
        let v2 = engine.snapshot_bytes_versioned(2).unwrap();
        let from_v2 = FrozenEngine::from_snapshot_bytes(&v2).unwrap();
        let v3 = from_v2.snapshot_bytes_versioned(3).unwrap();
        let from_v3 = FrozenEngine::from_snapshot_bytes(&v3).unwrap();
        assert_eq!(from_v2.name(), from_v3.name());
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..3 {
            let x = pecan_tensor::uniform(&mut rng, &[engine.input_len()], -1.0, 1.0)
                .into_vec();
            assert_bits_eq(&from_v2.predict(&x).unwrap(), &from_v3.predict(&x).unwrap());
        }
        // Converting back to v2 reproduces the original file byte-for-byte.
        assert_eq!(v2, from_v3.snapshot_bytes_versioned(2).unwrap());
    }
}

#[test]
fn empty_and_foreign_files_are_rejected() {
    assert!(matches!(
        FrozenEngine::from_snapshot_bytes(&[]).unwrap_err(),
        SnapshotError::Truncated { .. }
    ));
    assert!(matches!(
        FrozenEngine::from_snapshot_bytes(b"#!/bin/sh\necho not a model\n").unwrap_err(),
        SnapshotError::BadMagic
    ));
}

#[test]
fn file_round_trip_through_disk() {
    let engine = demo::lenet_engine(6);
    let dir = std::env::temp_dir().join(format!("pecan-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.psnp");
    engine.save_snapshot(&path).unwrap();
    let reloaded = FrozenEngine::load_snapshot(&path).unwrap();
    let x = vec![0.5f32; engine.input_len()];
    assert_bits_eq(&engine.predict(&x).unwrap(), &reloaded.predict(&x).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();

    // Missing file surfaces as Io, not a panic.
    assert!(matches!(
        FrozenEngine::load_snapshot(dir.join("nope.psnp")).unwrap_err(),
        SnapshotError::Io(_)
    ));
}

//! Multi-model routing over real TCP: two snapshots served side by side,
//! `/models/{name}/...` routes, default-model fallback on the bare
//! routes, typed 404 for unknown models, and per-model `/stats` counters.

use pecan_serve::client::HttpClient;
use pecan_serve::{demo, json, EngineRegistry, SchedulerConfig, Server, ServerConfig};
use std::sync::Arc;

fn two_model_server() -> (Server, Arc<pecan_serve::FrozenEngine>, Arc<pecan_serve::FrozenEngine>) {
    let mlp = Arc::new(demo::mlp_engine(41));
    let lenet = Arc::new(demo::lenet_engine(42));
    let registry = EngineRegistry::new();
    registry.register(mlp.clone(), SchedulerConfig::default()).unwrap();
    registry.register(lenet.clone(), SchedulerConfig::default()).unwrap();
    let server = Server::start_registry(registry, ServerConfig::default()).expect("bind");
    (server, mlp, lenet)
}

fn input_for(engine: &pecan_serve::FrozenEngine, phase: f32) -> Vec<f32> {
    (0..engine.input_len()).map(|i| (i as f32 * phase).sin()).collect()
}

#[test]
fn models_route_independently_and_bits_match() {
    let (server, mlp, lenet) = two_model_server();
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");

    // Per-model healthz advertises each model's own contract.
    let (status, body) = client.healthz(Some("lenet")).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(json::number_field(&body, "input_len").unwrap() as usize, lenet.input_len());
    assert_eq!(json::string_field(&body, "model").unwrap(), "lenet");

    // Bare healthz = default model (first registered), plus the model list.
    let (status, body) = client.healthz(None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(json::string_field(&body, "model").unwrap(), "mlp");
    assert!(body.contains("\"models\":[\"mlp\",\"lenet\"]"), "{body}");

    // Each named route serves its own engine, bit-identically.
    for (name, engine, phase) in
        [("mlp", &mlp, 0.21f32), ("lenet", &lenet, 0.013f32)]
    {
        let input = input_for(engine, phase);
        let (status, body) = client.predict(Some(name), &input).unwrap();
        assert_eq!(status, 200, "{name}: {body}");
        let served = json::array_field(&body, "output").unwrap();
        let direct = engine.predict(&input).unwrap();
        assert_eq!(served.len(), direct.len());
        for (a, b) in served.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}: wire changed bits");
        }
    }

    // Bare /predict falls back to the default model.
    let input = input_for(&mlp, 0.33);
    let (status, body) = client.predict(None, &input).unwrap();
    assert_eq!(status, 200, "{body}");
    let served = json::array_field(&body, "output").unwrap();
    let direct = mlp.predict(&input).unwrap();
    for (a, b) in served.iter().zip(&direct) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Unknown model → typed 404 on every scoped route.
    for (method, path, body) in [
        ("POST", "/models/nope/predict", "[1.0]"),
        ("GET", "/models/nope/healthz", ""),
        ("GET", "/models/nope/stats", ""),
    ] {
        let (status, body) = client.call(method, path, body).unwrap();
        assert_eq!(status, 404, "{path}: {body}");
        assert!(body.contains("unknown model"), "{path}: {body}");
    }
    // A model-scoped shutdown route does not exist (shutdown is global).
    let (status, _) = client.call("POST", "/models/mlp/shutdown", "").unwrap();
    assert_eq!(status, 404);

    // Bare /stats nests per-model counters: 2 mlp predictions (one named,
    // one bare), 1 lenet.
    let (status, stats) = client.call("GET", "/stats", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(json::string_field(&stats, "default").unwrap(), "mlp");
    let mlp_part = stats.split("\"mlp\":").nth(1).expect("mlp counters present");
    let lenet_part = stats.split("\"lenet\":").nth(1).expect("lenet counters present");
    assert_eq!(json::number_field(mlp_part, "completed").unwrap() as u64, 2);
    assert_eq!(json::number_field(lenet_part, "completed").unwrap() as u64, 1);

    // Per-model stats are the flat counters.
    let (status, lenet_stats) = client.call("GET", "/models/lenet/stats", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(json::number_field(&lenet_stats, "completed").unwrap() as u64, 1);
    assert_eq!(json::number_field(&lenet_stats, "submitted").unwrap() as u64, 1);

    server.stop();
}

#[test]
fn single_engine_start_keeps_legacy_routes() {
    // The PR-4 entry point still works: one engine, bare routes.
    let engine = Arc::new(demo::mlp_engine(43));
    let server = Server::start(engine.clone(), ServerConfig::default()).expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    let input = input_for(&engine, 0.4);
    let (status, body) = client.call("POST", "/predict", &json::format_f32_array(&input)).unwrap();
    assert_eq!(status, 200, "{body}");
    // …and the same engine is also reachable under its embedded name.
    let (status, body2) = client.predict(Some("mlp"), &input).unwrap();
    assert_eq!(status, 200, "{body2}");
    assert_eq!(
        json::array_field(&body, "output").unwrap(),
        json::array_field(&body2, "output").unwrap()
    );
    server.stop();
}

#[test]
fn empty_registry_refuses_to_serve() {
    let err = Server::start_registry(EngineRegistry::new(), ServerConfig::default())
        .expect_err("empty registry must not bind");
    assert!(err.to_string().contains("empty"), "{err}");
}

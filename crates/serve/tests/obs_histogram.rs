//! Property and stress battery for the lock-free latency histogram.
//!
//! Three contracts back the `/metrics` numbers:
//!
//! 1. **Quantile accuracy** — against a sorted-vector oracle, every
//!    reported quantile is an upper bound on the exact rank statistic and
//!    overshoots by at most one log-bucket width (relative error ≤ 1/32,
//!    plus 1 for integer rounding). Values below 32 are exact.
//! 2. **Concurrency** — `record` from many threads loses nothing: counts,
//!    sums, maxima and every bucket match a single-threaded reference.
//!    This is what "relaxed atomics are enough" means observably.
//! 3. **Merge algebra** — snapshot merge is associative and agrees with
//!    recording the union, so per-model histograms can be aggregated in
//!    any order without changing a dashboard.

use pecan_serve::{Histogram, HistogramSnapshot};
use proptest::prelude::*;
use proptest::num;

/// Exact rank statistic the histogram approximates: the smallest value
/// with rank `max(1, ceil(q * n))` in sorted order.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1).min(sorted.len());
    sorted[rank - 1]
}

/// The histogram's advertised error bound: `got` never undershoots the
/// oracle and overshoots by at most one sub-bucket width.
fn assert_within_bound(got: u64, oracle: u64, q: f64) {
    assert!(
        got >= oracle,
        "quantile({q}) = {got} undershoots exact rank statistic {oracle}"
    );
    assert!(
        got - oracle <= oracle / 32 + 1,
        "quantile({q}) = {got} overshoots {oracle} by more than 1/32 + 1"
    );
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

const QS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full-domain u64 samples: every quantile the exposition reports is
    /// within one log-bucket of the exact rank statistic.
    #[test]
    fn quantiles_track_the_sorted_oracle(
        values in proptest::collection::vec(num::u64::ANY, 1..300),
    ) {
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.count(), sorted.len() as u64);
        prop_assert_eq!(snap.max(), *sorted.last().unwrap());
        for q in QS {
            assert_within_bound(snap.quantile(q), oracle_quantile(&sorted, q), q);
        }
    }

    /// Latency-shaped samples (microsecond-to-second magnitudes, where
    /// the log buckets are coarsest relative to typical SLOs).
    #[test]
    fn quantiles_hold_on_latency_shaped_samples(
        values in proptest::collection::vec(1u64..2_000_000_000, 1..300),
    ) {
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in QS {
            assert_within_bound(snap.quantile(q), oracle_quantile(&sorted, q), q);
        }
    }

    /// Sub-32 values occupy exact unit buckets, so quantiles are exact.
    #[test]
    fn small_values_answer_exact_quantiles(
        values in proptest::collection::vec(0u64..32, 1..200),
    ) {
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in QS {
            prop_assert_eq!(snap.quantile(q), oracle_quantile(&sorted, q));
        }
    }

    /// Snapshot merge is associative and equals recording the union —
    /// aggregation order cannot change what a scrape reports.
    #[test]
    fn merge_is_associative_and_union_faithful(
        a in proptest::collection::vec(num::u64::ANY, 0..120),
        b in proptest::collection::vec(num::u64::ANY, 0..120),
        c in proptest::collection::vec(num::u64::ANY, 0..120),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        prop_assert_eq!(&left, &right);

        let mut union = a.clone();
        union.extend_from_slice(&b);
        union.extend_from_slice(&c);
        prop_assert_eq!(&left, &snapshot_of(&union));
    }
}

/// Many writers, one histogram: nothing is lost and nothing is invented.
/// Every thread records the same value set, so the merged result must be
/// exactly `THREADS` single-threaded reference histograms.
#[test]
fn concurrent_recording_conserves_totals_and_buckets() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 4_000;

    // Deterministic value mix spanning several bucket rows.
    let values: Vec<u64> =
        (0..PER_THREAD).map(|i| (i as u64).wrapping_mul(2_654_435_761) % 50_000_000).collect();

    let shared = Histogram::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for &v in &values {
                    shared.record(v);
                }
            });
        }
    });

    let got = shared.snapshot();
    let reference = snapshot_of(&values);
    assert_eq!(got.count(), (THREADS * PER_THREAD) as u64);
    assert_eq!(
        got.sum(),
        values.iter().map(|&v| v as u128).sum::<u128>() as u64 * THREADS as u64
    );
    assert_eq!(got.max(), reference.max());
    // Bucket-for-bucket: each bucket holds exactly THREADS× the reference.
    let mut expected = reference.clone();
    for _ in 1..THREADS {
        expected = expected.merge(&reference);
    }
    assert_eq!(got, expected);
}

/// `merge_from` on the live (atomic) histogram agrees with snapshot merge.
#[test]
fn live_merge_from_matches_snapshot_merge() {
    let a = Histogram::new();
    let b = Histogram::new();
    for v in [0, 1, 31, 32, 63, 64, 1_000, 123_456_789, u64::MAX] {
        a.record(v);
        b.record(v / 3 + 7);
    }
    let merged_snapshots = a.snapshot().merge(&b.snapshot());
    a.merge_from(&b);
    assert_eq!(a.snapshot(), merged_snapshots);
}

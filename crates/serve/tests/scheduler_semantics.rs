//! Scheduler semantics, pinned deterministically:
//!
//! * batched vs. sequential **output parity** under concurrent submitters
//!   (real engine);
//! * **backpressure**: a full bounded queue rejects with `Overloaded`
//!   (gated fake runner, so "full" is not a race);
//! * **clean shutdown**: every request accepted before `shutdown()` is
//!   answered — the queue drains, nothing dangles;
//! * **micro-batching**: queued requests actually coalesce into one batch.

use pecan_serve::{demo, BatchRunner, BatchScheduler, SchedulerConfig, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// A runner that blocks inside `run_batch` until the test releases it —
/// makes "worker busy, queue full" states deterministic instead of timing
/// dependent.
struct GatedRunner {
    /// Signals each `run_batch` entry.
    entered: mpsc::Sender<usize>,
    /// One `recv` per `run_batch` call is needed to proceed.
    gate: Mutex<mpsc::Receiver<()>>,
    calls: AtomicUsize,
}

impl GatedRunner {
    fn new() -> (Arc<Self>, mpsc::Receiver<usize>, mpsc::Sender<()>) {
        let (entered_tx, entered_rx) = mpsc::channel();
        let (gate_tx, gate_rx) = mpsc::channel();
        let runner = Arc::new(Self {
            entered: entered_tx,
            gate: Mutex::new(gate_rx),
            calls: AtomicUsize::new(0),
        });
        (runner, entered_rx, gate_tx)
    }
}

impl BatchRunner for GatedRunner {
    fn input_len(&self) -> usize {
        1
    }
    fn output_len(&self) -> usize {
        1
    }
    fn run_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ServeError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let _ = self.entered.send(inputs.len());
        // Hold until released; a closed gate (test ended) just proceeds.
        let _ = self.gate.lock().unwrap().recv();
        Ok(inputs.iter().map(|v| vec![v[0] * 2.0]).collect())
    }
}

#[test]
fn concurrent_submitters_get_bit_identical_answers() {
    let engine = Arc::new(demo::mlp_engine(11));
    let scheduler = Arc::new(BatchScheduler::start(
        engine.clone(),
        SchedulerConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 2,
        },
    ));
    let submitters = 8;
    let per_thread = 12;
    let mut handles = Vec::new();
    for t in 0..submitters {
        let scheduler = Arc::clone(&scheduler);
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            for _ in 0..per_thread {
                let input = pecan_tensor::uniform(&mut rng, &[engine.input_len()], -1.0, 1.0)
                    .into_vec();
                let served = scheduler.predict(input.clone()).expect("served");
                let direct = engine.predict(&input).expect("direct");
                assert_eq!(served.output.len(), direct.len());
                for (a, b) in served.output.iter().zip(&direct) {
                    assert_eq!(a.to_bits(), b.to_bits(), "scheduling changed bits");
                }
                assert!(served.batch_size >= 1);
                assert!(served.total >= served.queued);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = scheduler.stats();
    assert_eq!(stats.completed, submitters * per_thread);
    assert_eq!(stats.rejected, 0);
    assert!(stats.batches <= stats.completed);
    scheduler.shutdown();
}

#[test]
fn full_queue_rejects_with_overloaded() {
    let (runner, entered, gate) = GatedRunner::new();
    let scheduler = BatchScheduler::start(
        runner.clone(),
        SchedulerConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 2,
            workers: 1,
        },
    );
    // First request is taken by the worker, which blocks inside the gate.
    let t1 = scheduler.submit(vec![1.0]).unwrap();
    assert_eq!(entered.recv().unwrap(), 1, "worker holds request 1");
    // Queue now has room for exactly 2.
    let t2 = scheduler.submit(vec![2.0]).unwrap();
    let t3 = scheduler.submit(vec![3.0]).unwrap();
    match scheduler.submit(vec![4.0]) {
        Err(ServeError::Overloaded { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(scheduler.stats().rejected, 1);
    // Release the worker for the three accepted requests.
    for _ in 0..3 {
        gate.send(()).unwrap();
    }
    assert_eq!(t1.wait().unwrap().output, vec![2.0]);
    assert_eq!(t2.wait().unwrap().output, vec![4.0]);
    assert_eq!(t3.wait().unwrap().output, vec![6.0]);
    // After the backlog clears, capacity is available again.
    let t5 = scheduler.submit(vec![5.0]).unwrap();
    let _ = entered.recv();
    gate.send(()).unwrap();
    assert_eq!(t5.wait().unwrap().output, vec![10.0]);
    scheduler.shutdown();
}

#[test]
fn shutdown_drains_every_accepted_request() {
    let (runner, entered, gate) = GatedRunner::new();
    let scheduler = Arc::new(BatchScheduler::start(
        runner.clone(),
        SchedulerConfig {
            max_batch: 2,
            max_wait: Duration::ZERO,
            queue_capacity: 16,
            workers: 1,
        },
    ));
    // Worker grabs the first request and blocks; three more queue behind.
    let tickets: Vec<_> =
        (0..4).map(|i| scheduler.submit(vec![f32::from(i as u8)]).unwrap()).collect();
    let first_batch = entered.recv().unwrap();
    assert!(first_batch >= 1);

    // Shut down from another thread (it blocks joining the worker), then
    // release the gate so the drain can proceed.
    let shutdown_thread = {
        let scheduler = Arc::clone(&scheduler);
        std::thread::spawn(move || scheduler.shutdown())
    };
    // One release per remaining batch; extra sends are harmless.
    for _ in 0..4 {
        let _ = gate.send(());
    }
    for (i, t) in tickets.into_iter().enumerate() {
        let p = t.wait().unwrap_or_else(|e| panic!("request {i} dangled: {e}"));
        assert_eq!(p.output, vec![i as f32 * 2.0]);
    }
    shutdown_thread.join().unwrap();
    assert!(matches!(scheduler.submit(vec![9.0]), Err(ServeError::ShuttingDown)));
    assert_eq!(scheduler.stats().completed, 4);
}

#[test]
fn queued_requests_coalesce_into_one_batch() {
    let (runner, entered, gate) = GatedRunner::new();
    let scheduler = BatchScheduler::start(
        runner.clone(),
        SchedulerConfig {
            max_batch: 8,
            max_wait: Duration::ZERO, // batch = whatever is queued right now
            queue_capacity: 64,
            workers: 1,
        },
    );
    // Occupy the worker, then queue five requests behind it.
    let t0 = scheduler.submit(vec![0.0]).unwrap();
    assert_eq!(entered.recv().unwrap(), 1);
    let tickets: Vec<_> = (1..=5).map(|i| scheduler.submit(vec![i as f32]).unwrap()).collect();
    gate.send(()).unwrap(); // release batch 1
    assert_eq!(entered.recv().unwrap(), 5, "the five queued requests run as one batch");
    gate.send(()).unwrap(); // release batch 2
    assert_eq!(t0.wait().unwrap().batch_size, 1);
    for (i, t) in tickets.into_iter().enumerate() {
        let p = t.wait().unwrap();
        assert_eq!(p.batch_size, 5);
        assert_eq!(p.output, vec![(i + 1) as f32 * 2.0]);
    }
    assert_eq!(runner.calls.load(Ordering::SeqCst), 2);
    scheduler.shutdown();
}

#[test]
fn max_wait_gathers_stragglers_into_the_batch() {
    let engine = Arc::new(demo::mlp_engine(12));
    let scheduler = Arc::new(BatchScheduler::start(
        engine.clone(),
        SchedulerConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(200),
            queue_capacity: 64,
            workers: 1,
        },
    ));
    // Submit four requests from four threads within the gather window;
    // with a 200 ms window they should coalesce (wall clock on loaded CI
    // can stretch, so only the *parity* is a hard assertion).
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let scheduler = Arc::clone(&scheduler);
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let input = vec![t as f32 * 0.25; engine.input_len()];
            let p = scheduler.predict(input.clone()).expect("served");
            let direct = engine.predict(&input).expect("direct");
            assert_eq!(p.output, direct);
            p.batch_size
        }));
    }
    let sizes: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(sizes.iter().all(|&s| (1..=4).contains(&s)));
    scheduler.shutdown();
}

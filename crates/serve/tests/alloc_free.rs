//! Allocation-regression tests for the serving hot paths, measured under
//! the counting global allocator ([`pecan_obs::PecanAlloc`]).
//!
//! Two different strengths of claim, matching what the code documents:
//!
//! * **Strictly zero** — `FlightRecorder::record` ("recording … never
//!   allocates", `obs/recorder.rs`). Any allocation is a regression.
//! * **Constant after warm-up** — the scheduler submit path and
//!   `FrozenEngine::infer`. These allocate by design (`submit` creates an
//!   mpsc reply channel per request; `infer` builds fresh column matrices
//!   per stage), so the honest invariant is that the per-call allocation
//!   count does not *grow* once caches and queues are warm — catching
//!   accidental per-request leaks or O(n)-growth bugs without pretending
//!   the paths are allocation-free.
//!
//! The counters are thread-local, so the parallel test harness and the
//! scheduler's own worker threads do not perturb a test's measurement.

use pecan_serve::obs::NO_MODEL;
use pecan_serve::{demo, BatchScheduler, FlightRecorder, SchedulerConfig, TraceRecord};
use std::sync::Arc;
use std::time::Duration;

#[global_allocator]
static ALLOC: pecan_obs::PecanAlloc = pecan_obs::PecanAlloc;

/// Allocations on *this thread* while `f` runs.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let (before, _) = pecan_obs::alloc_counts();
    f();
    let (after, _) = pecan_obs::alloc_counts();
    after - before
}

#[test]
fn flight_recorder_record_is_allocation_free() {
    let recorder = FlightRecorder::new(64);
    let record = TraceRecord {
        id: 1,
        conn_gen: 2,
        model: NO_MODEL,
        status: 200,
        batch_id: 3,
        batch_size: 4,
        queue_us: 5,
        infer_us: 6,
        total_us: 7,
        t_us: 8,
    };
    recorder.record(&record); // warm nothing — there is nothing to warm
    let allocs = allocs_during(|| {
        for i in 0..1_000 {
            recorder.record(&TraceRecord { id: i, ..record });
        }
    });
    assert_eq!(allocs, 0, "FlightRecorder::record allocated {allocs} times over 1000 writes");
    assert_eq!(recorder.recorded(), 1_001);
}

#[test]
fn scheduler_submit_path_allocation_count_is_constant() {
    let engine = Arc::new(demo::mlp_engine(7));
    let input_len = engine.input_len();
    let scheduler = BatchScheduler::start(
        engine,
        SchedulerConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(50),
            queue_capacity: 64,
            workers: 1,
        },
    );

    // Pre-build every input outside the measured regions so the only
    // allocations measured are the submit path's own.
    let mut inputs: Vec<Vec<f32>> = (0..60).map(|_| vec![0.25f32; input_len]).collect();
    let mut predict = |n: usize| {
        for input in inputs.drain(..n) {
            scheduler.predict(input).expect("predict");
        }
    };

    // Warm-up: first predicts pay one-time costs (worker wakeup paths,
    // queue growth, thread-local lazy init in the channel runtime).
    predict(20);
    let first = allocs_during(|| predict(20));
    let second = allocs_during(|| predict(20));
    assert_eq!(
        first, second,
        "submit path allocation count grew across warm batches ({first} → {second})"
    );
    scheduler.shutdown();
}

#[test]
fn steady_state_infer_allocation_count_is_constant() {
    use pecan_core::InferBatch;

    let engine = demo::mlp_engine(7);
    let input_len = engine.input_len();
    // Batches built up front: `infer` consumes its batch, so each call
    // needs a fresh one, and building it must not count against `infer`.
    let mut batches: Vec<InferBatch> = (0..9)
        .map(|_| {
            InferBatch::from_samples(&[vec![0.5f32; input_len]], &[input_len]).expect("batch")
        })
        .collect();
    let mut infer = |n: usize| {
        for batch in batches.drain(..n) {
            std::hint::black_box(engine.infer(batch).expect("infer"));
        }
    };

    infer(3); // warm-up: one-time lazy init inside kernels and pools
    let per_call: Vec<u64> = (0..3).map(|_| allocs_during(|| infer(2)) / 2).collect();
    assert_eq!(
        per_call[0], per_call[1],
        "infer allocation count changed between warm calls: {per_call:?}"
    );
    assert_eq!(
        per_call[1], per_call[2],
        "infer allocation count changed between warm calls: {per_call:?}"
    );
}

//! Wire-level protocol conformance, run against BOTH front ends.
//!
//! Every test here speaks raw bytes over a real socket — no client
//! library — and most run twice, once against the threaded front end and
//! once against the epoll event loop, asserting the two are
//! **byte-identical** on the wire (the only masked bytes are the
//! `latency_us` digits inside predict bodies, which measure wall clock).

use pecan_serve::{demo, SchedulerConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// One server per front end, same seeded model, batching disabled so
/// `batch_size` is deterministic.
fn start(event_loop: bool) -> Server {
    let config = ServerConfig {
        scheduler: SchedulerConfig { max_batch: 1, ..SchedulerConfig::default() },
        event_loop,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    Server::start(Arc::new(demo::mlp_engine(42)), config).expect("server starts")
}

/// Front ends to exercise: threaded always, the event loop where built.
fn front_ends() -> Vec<Server> {
    let mut servers = vec![start(false)];
    if pecan_serve::event_loop_supported() {
        let s = start(true);
        assert!(s.uses_event_loop(), "event loop requested and supported");
        servers.push(s);
    }
    servers
}

fn connect(server: &Server) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// Writes `bytes`, half-closes, reads until EOF.
fn raw_exchange(server: &Server, bytes: &[u8]) -> Vec<u8> {
    let mut s = connect(server);
    s.write_all(bytes).expect("write");
    s.shutdown(std::net::Shutdown::Write).expect("shutdown write");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read to EOF");
    out
}

/// Reads responses one at a time off a socket, keeping bytes that belong
/// to the next response (pipelined answers share `read()` bursts).
struct ResponseReader {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl ResponseReader {
    fn new(stream: TcpStream) -> Self {
        Self { stream, carry: Vec::new() }
    }

    fn write_all(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write request");
    }

    /// Reads exactly one response (head + `Content-Length` body),
    /// returning its raw bytes. Panics on malformed framing.
    fn next_response(&mut self) -> Vec<u8> {
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(pos) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = self.stream.read(&mut chunk).expect("read head");
            assert!(
                n > 0,
                "EOF inside response head: {:?}",
                String::from_utf8_lossy(&self.carry)
            );
            self.carry.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.carry[..head_end]).into_owned();
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .expect("numeric Content-Length");
        while self.carry.len() < head_end + content_length {
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "EOF inside response body");
            self.carry.extend_from_slice(&chunk[..n]);
        }
        let rest = self.carry.split_off(head_end + content_length);
        std::mem::replace(&mut self.carry, rest)
    }
}

/// Masks the only legitimately variable bytes: the `latency_us` digits.
fn mask_latency(bytes: &[u8]) -> String {
    let text = String::from_utf8_lossy(bytes).into_owned();
    let Some(start) = text.find("\"latency_us\":") else { return text };
    let digits_at = start + "\"latency_us\":".len();
    let digits_end = text[digits_at..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(text.len(), |i| digits_at + i);
    // The masked response must also re-mask Content-Length, which varies
    // with the digit count.
    let masked = format!("{}X{}", &text[..digits_at], &text[digits_end..]);
    let cl_at = masked.find("Content-Length: ").expect("Content-Length") + 16;
    let cl_end = masked[cl_at..]
        .find('\r')
        .map_or(masked.len(), |i| cl_at + i);
    format!("{}N{}", &masked[..cl_at], &masked[cl_end..])
}

fn predict_request(input: &[f32], extra_headers: &str) -> Vec<u8> {
    let body: Vec<String> = input.iter().map(|v| format!("{v}")).collect();
    let body = format!("[{}]", body.join(","));
    format!(
        "POST /predict HTTP/1.1\r\n{extra_headers}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn some_input(len: usize) -> Vec<f32> {
    (0..len).map(|i| (i as f32 * 0.37).sin()).collect()
}

/// The conformance battery: every interesting request shape, sent
/// verbatim to both front ends; their raw answers must match byte for
/// byte (latency masked).
#[test]
fn front_ends_answer_byte_identically() {
    let servers = front_ends();
    let input_len = 64;
    let cases: Vec<Vec<u8>> = vec![
        b"GET /healthz HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /models/mlp/healthz HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /nope HTTP/1.1\r\n\r\n".to_vec(),
        b"DELETE /predict HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /models/ghost/healthz HTTP/1.1\r\n\r\n".to_vec(),
        predict_request(&some_input(input_len), ""),
        predict_request(&some_input(3), ""), // wrong length → 400
        b"POST /predict HTTP/1.1\r\nContent-Length: 7\r\n\r\nnot-js!".to_vec(),
        b"POST /predict HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n".to_vec(),
        b"BOGUS\r\n\r\n".to_vec(),
        b"GET /healthz HTTP/1.0\r\n\r\n".to_vec(),
    ];
    for (i, case) in cases.iter().enumerate() {
        let answers: Vec<String> = servers
            .iter()
            .map(|srv| mask_latency(&raw_exchange(srv, case)))
            .collect();
        for pair in answers.windows(2) {
            assert_eq!(
                pair[0],
                pair[1],
                "case {i} ({:?}) diverged between front ends",
                String::from_utf8_lossy(case)
            );
        }
        assert!(
            answers[0].starts_with("HTTP/1.1 "),
            "case {i} did not produce an HTTP response"
        );
    }
    for s in servers {
        s.stop();
    }
}

/// A request dripped one byte at a time must be assembled and answered
/// exactly like one sent whole.
#[test]
fn byte_by_byte_drip_is_assembled() {
    for server in front_ends() {
        let request = predict_request(&some_input(64), "");
        let whole = mask_latency(&raw_exchange(&server, &request));

        let mut rx = ResponseReader::new(connect(&server));
        for b in &request {
            rx.write_all(std::slice::from_ref(b));
        }
        let dripped = mask_latency(&rx.next_response());
        assert_eq!(whole, dripped, "drip changed the answer");
        server.stop();
    }
}

/// Keep-alive: one socket, many sequential requests, one server-side
/// connection.
#[test]
fn keep_alive_reuses_the_connection() {
    for server in front_ends() {
        let mut rx = ResponseReader::new(connect(&server));
        for round in 0..5 {
            rx.write_all(&predict_request(&some_input(64), ""));
            let response = String::from_utf8_lossy(&rx.next_response()).into_owned();
            assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "round {round}: {response}");
            assert!(response.contains("\r\nConnection: keep-alive\r\n"));
        }
        // The last response can reach the client before the server bumps
        // its counter — poll briefly instead of racing it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let stats = loop {
            let stats = server.conn_stats();
            if stats.responses == 5 || std::time::Instant::now() > deadline {
                break stats;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(stats.accepted, 1, "five requests rode one connection");
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.responses, 5);
        server.stop();
    }
}

/// HTTP/1.1 pipelining: several requests written back-to-back before any
/// response is read; the answers come back in request order, each correct
/// for its own input.
#[test]
fn pipelined_requests_are_answered_in_order() {
    for server in front_ends() {
        // Reference answers, one call at a time.
        let inputs: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..64).map(|j| ((i * 64 + j) as f32 * 0.11).cos()).collect())
            .collect();
        let reference: Vec<String> = inputs
            .iter()
            .map(|inp| {
                let mut rx = ResponseReader::new(connect(&server));
                rx.write_all(&predict_request(inp, ""));
                mask_latency(&rx.next_response())
            })
            .collect();

        // Same four requests, pipelined in one write.
        let mut pipelined = Vec::new();
        for inp in &inputs {
            pipelined.extend_from_slice(&predict_request(inp, ""));
        }
        let mut rx = ResponseReader::new(connect(&server));
        rx.write_all(&pipelined);
        for (i, want) in reference.iter().enumerate() {
            let got = mask_latency(&rx.next_response());
            assert_eq!(&got, want, "pipelined response {i} out of order or wrong");
        }
        server.stop();
    }
}

/// `Connection: close` is honored: the response says close and the server
/// actually closes.
#[test]
fn connection_close_is_honored() {
    for server in front_ends() {
        let mut rx = ResponseReader::new(connect(&server));
        rx.write_all(&predict_request(&some_input(64), "Connection: close\r\n"));
        let response = String::from_utf8_lossy(&rx.next_response()).into_owned();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("\r\nConnection: close\r\n"));
        // EOF follows the response — nothing more arrives.
        let mut rest = Vec::new();
        rx.stream.read_to_end(&mut rest).expect("read EOF");
        assert!(rx.carry.is_empty() && rest.is_empty(), "server kept talking after close");
        server.stop();
    }
}

/// HTTP/1.0 defaults to close (keep-alive only on request).
#[test]
fn http_1_0_defaults_to_close() {
    for server in front_ends() {
        let response = raw_exchange(&server, b"GET /healthz HTTP/1.0\r\n\r\n");
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("\r\nConnection: close\r\n"));
        server.stop();
    }
}

/// Exact framing: status line, headers, terminator and body length all
/// where the protocol says they must be.
#[test]
fn response_framing_is_exact() {
    for server in front_ends() {
        let response = raw_exchange(&server, b"GET /healthz HTTP/1.1\r\n\r\n");
        let head_end = response
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head terminator");
        let head = std::str::from_utf8(&response[..head_end]).expect("ASCII head");
        let mut lines = head.split("\r\n");
        assert_eq!(lines.next(), Some("HTTP/1.1 200 OK"));
        let headers: Vec<&str> = lines.collect();
        assert!(headers.contains(&"Content-Type: application/json"));
        let body = &response[head_end + 4..];
        let declared: usize = headers
            .iter()
            .find_map(|h| h.strip_prefix("Content-Length: "))
            .expect("Content-Length")
            .parse()
            .expect("numeric");
        assert_eq!(body.len(), declared, "body length must match the declaration");
        assert!(body.starts_with(b"{\"status\":\"ok\""));
        server.stop();
    }
}

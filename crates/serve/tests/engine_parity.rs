//! Parity pins for the frozen engine.
//!
//! 1. The compiled engine tracks the training-path model forward (small
//!    tolerance — the training graph runs different but equivalent
//!    float code for conv/pool plumbing).
//! 2. Batched serving is **bit-identical** to single-request serving for
//!    any batch composition — the property the micro-batching scheduler
//!    relies on to mix traffic freely. Property-tested over random inputs
//!    and batch sizes, for both a conv pipeline (LeNet) and an MLP.

use pecan_autograd::Var;
use pecan_core::{PecanLinear, PecanVariant, PqLayerSettings};
use pecan_nn::{Layer, Relu, Sequential};
use pecan_serve::{demo, FrozenEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small PECAN-A MLP — the engine must serve the Angle variant too.
fn angle_mlp(seed: u64) -> (Sequential, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new();
    net.push(Box::new(
        PecanLinear::new(&mut rng, PecanVariant::Angle, PqLayerSettings::new(8, 4, 1.0), 16, 12)
            .unwrap(),
    ));
    net.push(Box::new(Relu));
    net.push(Box::new(
        PecanLinear::new(&mut rng, PecanVariant::Angle, PqLayerSettings::new(8, 4, 1.0), 12, 5)
            .unwrap(),
    ));
    (net, vec![16])
}

#[test]
fn engine_tracks_model_forward_lenet() {
    let (mut net, shape) = demo::lenet(21);
    let engine = FrozenEngine::compile(&net, &shape).unwrap();
    let mut rng = StdRng::seed_from_u64(22);
    let x = pecan_tensor::uniform(&mut rng, &[1, 1, 28, 28], -1.0, 1.0);
    let want = net.forward(&Var::constant(x.clone()), false).unwrap();
    let got = engine.predict(x.data()).unwrap();
    let diff = want
        .value()
        .data()
        .iter()
        .zip(&got)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(diff < 1e-4, "engine diverges from model by {diff}");
}

#[test]
fn engine_tracks_model_forward_angle_mlp() {
    let (mut net, shape) = angle_mlp(23);
    let engine = FrozenEngine::compile(&net, &shape).unwrap();
    let mut rng = StdRng::seed_from_u64(24);
    let x = pecan_tensor::uniform(&mut rng, &[3, 16], -1.0, 1.0);
    let want = net.forward(&Var::constant(x.clone()), false).unwrap();
    for i in 0..3 {
        let got = engine.predict(x.row(i)).unwrap();
        let diff = want
            .value()
            .row(i)
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-4, "sample {i} diverges by {diff}");
    }
}

/// Bit-exact equality, reported with the first offending index.
fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// MLP: any batch of requests answers exactly like one-at-a-time.
    #[test]
    fn mlp_batched_is_bit_identical_to_single(
        seed in 0u64..6,
        batch in 1usize..12,
        values in proptest::collection::vec(-2.0f32..2.0, demo::MLP_INPUT),
    ) {
        let engine = demo::mlp_engine(seed);
        let inputs: Vec<Vec<f32>> = (0..batch)
            .map(|i| {
                // vary each sample deterministically off the base vector
                values.iter().map(|v| v + i as f32 * 0.125).collect()
            })
            .collect();
        let batched = engine.predict_batch(&inputs).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            let single = engine.predict(input).unwrap();
            assert_bits_eq(&single, &batched[i], "mlp batch");
        }
    }

    /// Conv pipeline: im2col concatenation across requests changes no bits.
    #[test]
    fn lenet_batched_is_bit_identical_to_single(
        batch in 1usize..5,
        base in -1.0f32..1.0,
    ) {
        let engine = demo::lenet_engine(3);
        let mut rng = StdRng::seed_from_u64(base.to_bits() as u64);
        let inputs: Vec<Vec<f32>> = (0..batch)
            .map(|_| {
                pecan_tensor::uniform(&mut rng, &[engine.input_len()], -1.0, 1.0)
                    .into_vec()
            })
            .collect();
        let batched = engine.predict_batch(&inputs).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            let single = engine.predict(input).unwrap();
            assert_bits_eq(&single, &batched[i], "lenet batch");
        }
    }
}

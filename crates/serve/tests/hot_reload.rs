//! Zero-downtime model lifecycle, end to end over HTTP.
//!
//! The contract under test: a `POST /models/{name}/reload` while clients
//! are hammering the model drops **zero** requests, answers every request
//! with a known engine version (old or new, never garbage), and serves
//! only the new version once the swap completes. Counters must carry
//! across the swap, and a failed reload must leave the old version
//! serving.
//!
//! Uses the threaded front end: it handles `/reload` concurrently with
//! predictions. (The event loop serves `/reload` too, but on its single
//! loop thread — see `docs/serving-ops.md`.)

use pecan_serve::client::HttpClient;
use pecan_serve::{demo, EngineRegistry, LoadMode, SchedulerConfig, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pecan-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn body_output(body: &str) -> Vec<f32> {
    let inner = body
        .split("\"output\":")
        .nth(1)
        .and_then(|t| t.split(']').next())
        .unwrap_or_else(|| panic!("no output array in {body}"));
    format!("{inner}]")
        .trim_start_matches('[')
        .trim_end_matches(']')
        .split(',')
        .map(|t| t.trim().parse::<f32>().expect("float"))
        .collect()
}

#[test]
fn live_reload_drops_nothing_and_serves_known_versions() {
    let dir = tmp_dir("hot-reload");
    let path = dir.join("m.psnp");
    let seeds: [u64; 4] = [1, 2, 3, 4];
    demo::mlp_engine(seeds[0]).save_snapshot(&path).unwrap();

    // The answer every engine generation gives to one fixed input —
    // responses observed over HTTP must match one of these exactly.
    let engines: Vec<_> = seeds.iter().map(|&s| demo::mlp_engine(s)).collect();
    let input: Vec<f32> = (0..engines[0].input_len()).map(|i| (i as f32 * 0.37).sin()).collect();
    let expected: Vec<Vec<f32>> = engines.iter().map(|e| e.predict(&input).unwrap()).collect();
    let input_json = format!(
        "[{}]",
        input.iter().map(|v| format!("{v}")).collect::<Vec<_>>().join(",")
    );

    let registry = EngineRegistry::new();
    registry
        .register_file("m", &path, LoadMode::Copy, SchedulerConfig::default())
        .unwrap();
    let server =
        Server::start_registry(registry, ServerConfig::default()).expect("server starts");
    let addr = server.local_addr();

    // Clients hammer the model on keep-alive connections for the whole
    // duration of several blue/green swaps.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let expected = expected.clone();
            let input_json = input_json.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                let mut done = 0u64;
                let mut newest_seen = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let (status, body) = client
                        .call("POST", "/models/m/predict", &input_json)
                        .expect("predict call survives reloads");
                    assert_eq!(status, 200, "no request may fail during a reload: {body}");
                    let output = body_output(&body);
                    let version = expected
                        .iter()
                        .position(|want| want == &output)
                        .unwrap_or_else(|| {
                            panic!("response matches no engine generation: {body}")
                        });
                    // Versions only ever move forward on one connection.
                    assert!(
                        version + 1 >= newest_seen,
                        "answer regressed to a retired engine generation"
                    );
                    newest_seen = newest_seen.max(version + 1);
                    done += 1;
                }
                done
            })
        })
        .collect();

    // Swap through the remaining generations while the load runs.
    let mut admin = HttpClient::connect(addr).expect("connect admin");
    for (round, &seed) in seeds.iter().enumerate().skip(1) {
        std::thread::sleep(std::time::Duration::from_millis(60));
        demo::mlp_engine(seed).save_snapshot(&path).unwrap();
        let (status, body) = admin.call("POST", "/models/m/reload", "").expect("reload");
        assert_eq!(status, 200, "reload must succeed: {body}");
        assert!(body.contains("\"status\":\"reloaded\""), "{body}");
        assert!(body.contains(&format!("\"version\":{}", round + 1)), "{body}");
    }

    // A corrupt snapshot must fail the reload *and* leave the last good
    // version serving.
    std::fs::write(&path, b"PECANSNPnot a real snapshot").unwrap();
    let (status, body) = admin.call("POST", "/models/m/reload", "").expect("reload");
    assert_eq!(status, 500, "corrupt file is an engine error: {body}");

    std::thread::sleep(std::time::Duration::from_millis(60));
    stop.store(true, Ordering::SeqCst);
    let counts: Vec<u64> = workers.into_iter().map(|w| w.join().expect("client")).collect();
    assert!(counts.iter().all(|&c| c > 0), "every client made progress: {counts:?}");

    // After the dust settles: the newest generation answers, and the
    // continuous counters account for every accepted request.
    let (_, final_body) = admin.call("POST", "/models/m/predict", &input_json).expect("final");
    assert_eq!(
        body_output(&final_body),
        expected[seeds.len() - 1],
        "the last successful reload must be what serves"
    );
    let entry = server.registry().resolve(Some("m")).unwrap();
    assert_eq!(entry.version(), seeds.len() as u64, "one version per successful reload");
    let stats = entry.stats();
    assert_eq!(
        stats.completed + stats.failed,
        stats.submitted,
        "every accepted request was answered: {stats:?}"
    );
    assert_eq!(stats.failed, 0, "no request failed across {} reloads", seeds.len() - 1);
    assert!(
        stats.completed >= counts.iter().sum::<u64>(),
        "client-observed answers are a subset of completed"
    );

    server.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reload_of_memory_registered_model_is_a_client_error() {
    let registry = EngineRegistry::new();
    registry
        .register(Arc::new(demo::mlp_engine(5)), SchedulerConfig::default())
        .unwrap();
    let server =
        Server::start_registry(registry, ServerConfig::default()).expect("server starts");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    // No snapshot source on record: 400, not 500 — the operator asked for
    // something this model cannot do.
    let (status, body) = client.call("POST", "/reload", "").expect("call");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("no snapshot source"), "{body}");
    // Unknown names are still 404.
    let (status, _) = client.call("POST", "/models/ghost/reload", "").expect("call");
    assert_eq!(status, 404);
    server.stop();
}

#[test]
fn event_loop_front_end_serves_reload_too() {
    if !pecan_serve::event_loop_supported() {
        return;
    }
    let dir = tmp_dir("hot-reload-ev");
    let path = dir.join("ev.psnp");
    demo::mlp_engine(6).save_snapshot(&path).unwrap();
    let registry = EngineRegistry::new();
    registry
        .register_file("ev", &path, LoadMode::Map, SchedulerConfig::default())
        .unwrap();
    let config = ServerConfig { event_loop: true, ..ServerConfig::default() };
    let server = Server::start_registry(registry, config).expect("server starts");
    assert!(server.uses_event_loop());
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    demo::mlp_engine(7).save_snapshot(&path).unwrap();
    let (status, body) = client.call("POST", "/models/ev/reload", "").expect("reload");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"version\":2"), "{body}");
    let entry = server.registry().resolve(Some("ev")).unwrap();
    assert_eq!(entry.version(), 2);
    server.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

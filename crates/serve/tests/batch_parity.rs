//! Pins for the batch-first `InferBatch` pipeline: for conv/linear/pool
//! mixes, ragged batch sizes and batch = 1, the single-matrix path is
//! **bit-identical** to the retained per-sample shims (`predict`, and
//! `predict_batch` packing/unpacking at the boundary).
//!
//! Together with `engine_parity.rs` (shims vs the training-path forward)
//! this closes the loop: training forward ≈ per-sample shim ≡ batched
//! matrix pipeline.

use pecan_core::{InferBatch, PecanConv2d, PecanLinear, PecanVariant, PqLayerSettings};
use pecan_nn::{GlobalAvgPool, Relu, Sequential};
use pecan_serve::{demo, FrozenEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}: {x} vs {y}");
    }
}

/// A conv → ReLU → global-avg-pool → linear pipeline: exercises the one
/// stage mix (GAP) the demo models do not cover, in both variants.
fn gap_convnet(variant: PecanVariant, seed: u64) -> FrozenEngine {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new();
    net.push(Box::new(
        PecanConv2d::new(&mut rng, variant, PqLayerSettings::new(6, 9, 0.8), 2, 5, 3, 1, 1)
            .unwrap(),
    ));
    net.push(Box::new(Relu));
    net.push(Box::new(GlobalAvgPool));
    net.push(Box::new(
        PecanLinear::new(&mut rng, variant, PqLayerSettings::new(6, 5, 0.8), 5, 4).unwrap(),
    ));
    FrozenEngine::compile(&net, &[2, 6, 6]).unwrap()
}

fn ragged_inputs(engine: &FrozenEngine, batch: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batch)
        .map(|_| pecan_tensor::uniform(&mut rng, &[engine.input_len()], -1.0, 1.0).into_vec())
        .collect()
}

/// The whole parity triangle for one engine and batch: per-sample shim,
/// batch shim, and a hand-packed `InferBatch` through `infer` must agree
/// bit-for-bit.
fn check_parity(engine: &FrozenEngine, inputs: &[Vec<f32>], what: &str) {
    let batched = engine.predict_batch(inputs).unwrap();
    let flat_shape = [engine.input_len()];
    let matrix = InferBatch::from_samples(inputs, &flat_shape).unwrap();
    let via_matrix = engine.infer(matrix).unwrap();
    assert_eq!(via_matrix.sample_shape(), engine.output_shape());
    assert_eq!(via_matrix.cols(), inputs.len());
    for (i, input) in inputs.iter().enumerate() {
        let single = engine.predict(input).unwrap();
        assert_bits_eq(&single, &batched[i], what);
        assert_bits_eq(&single, via_matrix.col(i), what);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Linear/ReLU mix (MLP) at ragged batch sizes including 1.
    #[test]
    fn mlp_matrix_pipeline_matches_shims(seed in 0u64..4, batch in 1usize..11) {
        let engine = demo::mlp_engine(seed);
        let inputs = ragged_inputs(&engine, batch, seed ^ 0xA5A5);
        check_parity(&engine, &inputs, "mlp");
    }

    /// Conv/max-pool/flatten/linear mix (LeNet) at ragged batch sizes.
    #[test]
    fn lenet_matrix_pipeline_matches_shims(seed in 0u64..3, batch in 1usize..6) {
        let engine = demo::lenet_engine(seed);
        let inputs = ragged_inputs(&engine, batch, seed ^ 0x5A5A);
        check_parity(&engine, &inputs, "lenet");
    }

    /// Conv/global-avg-pool mix, both PECAN variants.
    #[test]
    fn gap_convnet_matrix_pipeline_matches_shims(
        seed in 0u64..3,
        batch in 1usize..9,
        angle in proptest::bool::ANY,
    ) {
        let variant = if angle { PecanVariant::Angle } else { PecanVariant::Distance };
        let engine = gap_convnet(variant, seed);
        let inputs = ragged_inputs(&engine, batch, seed ^ 0xC3C3);
        check_parity(&engine, &inputs, "gap-convnet");
    }

    /// Growing a batch never changes the prefix (no cross-column leakage).
    #[test]
    fn batch_prefix_is_stable_under_growth(grow in 1usize..6) {
        let engine = demo::mlp_engine(2);
        let inputs = ragged_inputs(&engine, 1 + grow, 77);
        let small = engine.predict_batch(&inputs[..1]).unwrap();
        let large = engine.predict_batch(&inputs).unwrap();
        assert_bits_eq(&small[0], &large[0], "prefix stability");
    }
}

#[test]
fn shaped_and_flat_matrix_inputs_agree() {
    let engine = demo::lenet_engine(9);
    let inputs = ragged_inputs(&engine, 3, 9);
    let flat = InferBatch::from_samples(&inputs, &[engine.input_len()]).unwrap();
    let shaped = InferBatch::from_samples(&inputs, &[1, 28, 28]).unwrap();
    let a = engine.infer(flat).unwrap();
    let b = engine.infer(shaped).unwrap();
    assert_bits_eq(a.data(), b.data(), "flat vs shaped");
}

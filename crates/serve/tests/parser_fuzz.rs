//! Property/fuzz battery for the incremental HTTP request parser.
//!
//! The contract under test: for ANY byte stream, fed in ANY chunking,
//! [`RequestParser`] either yields valid [`Request`]s or a typed
//! [`ParseError`] — it never panics, never loops, and never lets the
//! chunking change the parse. These are exactly the invariants the
//! event-loop front end leans on when it feeds the parser whatever
//! `read()` happened to return.

use pecan_serve::{ParseError, Request, RequestParser};
use proptest::prelude::*;
use proptest::{num, sample};

const MAX_HEAD: usize = 16 << 10;
const MAX_BODY: usize = 1 << 20;

fn parser() -> RequestParser {
    RequestParser::new(MAX_HEAD, MAX_BODY)
}

/// Feeds `bytes` in one piece and drains every parse result.
fn parse_all(bytes: &[u8]) -> (Vec<Request>, Option<ParseError>) {
    feed_chunked(bytes, &[])
}

/// Feeds `bytes` split at the given cut points (sorted, deduped here) and
/// drains the parser after every chunk, collecting requests in order.
fn feed_chunked(bytes: &[u8], cuts: &[usize]) -> (Vec<Request>, Option<ParseError>) {
    let mut cuts: Vec<usize> = cuts.iter().map(|&c| c.min(bytes.len())).collect();
    cuts.push(0);
    cuts.push(bytes.len());
    cuts.sort_unstable();
    cuts.dedup();
    let mut p = parser();
    let mut requests = Vec::new();
    for window in cuts.windows(2) {
        p.push(&bytes[window[0]..window[1]]);
        loop {
            match p.next_request() {
                Ok(Some(r)) => requests.push(r),
                Ok(None) => break,
                Err(e) => return (requests, Some(e)),
            }
        }
    }
    (requests, None)
}

fn req(method: &str, target: &str, headers: &[(&str, &str)], body: &[u8]) -> Vec<u8> {
    let mut out = format!("{method} {target} HTTP/1.1\r\n").into_bytes();
    for (k, v) in headers {
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
    out.extend_from_slice(body);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup, arbitrary chunking: never a panic or hang,
    /// only requests and/or one typed error.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(num::u8::ANY, 0..2048),
        cuts in proptest::collection::vec(0usize..2048, 0..8),
    ) {
        let (_requests, _error) = feed_chunked(&bytes, &cuts);
        // Reaching this line is the property: typed outcome, no panic.
        prop_assert!(true);
    }

    /// A valid request parses identically no matter how the bytes are
    /// split — including splits inside the request line, inside a header,
    /// inside the CRLFCRLF terminator, and inside the body.
    #[test]
    fn chunking_never_changes_the_parse(
        body_len in 0usize..64,
        cuts in proptest::collection::vec(0usize..256, 0..6),
        keep_alive in proptest::bool::ANY,
    ) {
        let body: Vec<u8> = (0..body_len as u8).collect();
        let headers: &[(&str, &str)] =
            if keep_alive { &[] } else { &[("Connection", "close")] };
        let bytes = req("POST", "/predict", headers, &body);
        let (whole, err_whole) = parse_all(&bytes);
        let (split, err_split) = feed_chunked(&bytes, &cuts);
        prop_assert!(err_whole.is_none() && err_split.is_none());
        prop_assert_eq!(whole.len(), 1);
        prop_assert_eq!(split.len(), 1);
        prop_assert_eq!(&whole[0].method, &split[0].method);
        prop_assert_eq!(&whole[0].target, &split[0].target);
        prop_assert_eq!(&whole[0].body, &split[0].body);
        prop_assert_eq!(whole[0].keep_alive, split[0].keep_alive);
        prop_assert_eq!(whole[0].keep_alive, keep_alive);
    }

    /// Pipelined requests come out in order and intact, regardless of
    /// where the stream was cut.
    #[test]
    fn pipelining_survives_chunking(
        n in 1usize..6,
        cuts in proptest::collection::vec(0usize..512, 0..8),
    ) {
        let mut bytes = Vec::new();
        for i in 0..n {
            let body = vec![i as u8; i];
            bytes.extend_from_slice(&req("POST", &format!("/r{i}"), &[], &body));
        }
        let (requests, error) = feed_chunked(&bytes, &cuts);
        prop_assert!(error.is_none());
        prop_assert_eq!(requests.len(), n);
        for (i, r) in requests.iter().enumerate() {
            let want = format!("/r{i}");
            prop_assert_eq!(r.target.as_str(), want.as_str());
            prop_assert_eq!(r.body.len(), i);
        }
    }

    /// Malformed request lines are a typed `BadRequestLine`, never a
    /// panic, for a whole family of mangled inputs.
    #[test]
    fn malformed_request_lines_are_typed_errors(
        line in sample::select(vec![
            "",
            " ",
            "GET",
            "GET /x",
            "GET /x SPDY/3",
            "GET /x HTTP/2.0",
            "\u{1}\u{2}\u{3}",
        ]),
    ) {
        let bytes = format!("{line}\r\n\r\n").into_bytes();
        let (requests, error) = parse_all(&bytes);
        prop_assert!(requests.is_empty());
        prop_assert_eq!(error, Some(ParseError::BadRequestLine));
    }

    /// Unparsable Content-Length values are `BadContentLength`.
    #[test]
    fn bad_content_length_is_a_typed_error(
        value in sample::select(vec!["-1", "abc", "1e3", "0x10", "9999999999999999999999"]),
    ) {
        let bytes =
            format!("POST /predict HTTP/1.1\r\nContent-Length: {value}\r\n\r\n").into_bytes();
        let (requests, error) = parse_all(&bytes);
        prop_assert!(requests.is_empty());
        prop_assert_eq!(error, Some(ParseError::BadContentLength));
    }
}

/// Exhaustive, not sampled: a full request split at EVERY byte boundary
/// parses to the same result as the unsplit bytes.
#[test]
fn every_single_split_point_parses_identically() {
    let body: Vec<u8> = (0u8..48).collect();
    let bytes = req("POST", "/models/mlp/predict", &[("X-Extra", "1")], &body);
    let (whole, err) = parse_all(&bytes);
    assert!(err.is_none());
    assert_eq!(whole.len(), 1);
    for cut in 0..=bytes.len() {
        let (split, err) = feed_chunked(&bytes, &[cut]);
        assert!(err.is_none(), "split at {cut} errored");
        assert_eq!(split.len(), 1, "split at {cut} lost the request");
        assert_eq!(split[0].body, whole[0].body, "split at {cut} changed the body");
        assert_eq!(split[0].target, whole[0].target);
    }
}

/// A Content-Length beyond the configured body cap is rejected as soon as
/// the head is complete — the parser never waits for (or buffers) the
/// declared body.
#[test]
fn oversized_content_length_rejects_without_buffering() {
    let declared = MAX_BODY + 1;
    let head = format!("POST /predict HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
    let mut p = parser();
    p.push(head.as_bytes());
    match p.next_request() {
        Err(ParseError::BodyTooLarge { declared: d, limit }) => {
            assert_eq!(d, declared);
            assert_eq!(limit, MAX_BODY);
        }
        other => panic!("expected BodyTooLarge, got {other:?}"),
    }
    assert_eq!(ParseError::BodyTooLarge { declared, limit: MAX_BODY }.status(), 413);
}

/// An endless header section trips the head cap instead of buffering
/// forever — the slowloris guard at the parser layer.
#[test]
fn unterminated_head_hits_the_cap() {
    let mut p = parser();
    let mut err = None;
    // Drip header lines without ever sending the blank line.
    for i in 0..10_000 {
        p.push(format!("X-Drip-{i}: aaaaaaaaaaaaaaaa\r\n").as_bytes());
        match p.next_request() {
            Ok(None) => continue,
            Ok(Some(r)) => panic!("parser invented a request: {r:?}"),
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    assert_eq!(err, Some(ParseError::HeadTooLarge { limit: MAX_HEAD }));
    assert_eq!(ParseError::HeadTooLarge { limit: MAX_HEAD }.status(), 431);
    // Buffering is bounded: the parser kept roughly the cap, not the drip.
    assert!(p.buffered() <= MAX_HEAD + 64);
}

/// After any error the parser is poisoned: it keeps returning the same
/// typed error and never resurrects a request from the tainted stream.
#[test]
fn errors_poison_the_stream() {
    let mut p = parser();
    p.push(b"BOGUS\r\n\r\n");
    let first = p.next_request().unwrap_err();
    assert_eq!(first, ParseError::BadRequestLine);
    // Even a perfectly valid follow-up request must not come out.
    p.push(&req("GET", "/healthz", &[], b""));
    for _ in 0..3 {
        assert_eq!(p.next_request().unwrap_err(), first);
    }
}

//! Fault injection against live servers: misbehaving clients must cost
//! the server one connection slot at most, never a thread, never the
//! loop.
//!
//! Each scenario runs against both front ends (threaded always, epoll
//! where built) with a short, explicit `read_timeout` so the tests are
//! deterministic: they poll observable state (`/stats` counters, actual
//! socket EOF) rather than sleeping and hoping.

use pecan_serve::{demo, ConnStatsSnapshot, SchedulerConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const READ_TIMEOUT: Duration = Duration::from_millis(300);

fn start(event_loop: bool) -> Server {
    let config = ServerConfig {
        scheduler: SchedulerConfig { max_batch: 1, ..SchedulerConfig::default() },
        event_loop,
        read_timeout: READ_TIMEOUT,
        ..ServerConfig::default()
    };
    Server::start(Arc::new(demo::mlp_engine(42)), config).expect("server starts")
}

fn front_ends() -> Vec<Server> {
    let mut servers = vec![start(false)];
    if pecan_serve::event_loop_supported() {
        servers.push(start(true));
    }
    servers
}

fn connect(server: &Server) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// Polls `probe` until it returns true or five seconds pass.
fn wait_until(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for: {what}");
}

fn wait_for_stats(server: &Server, what: &str, probe: impl Fn(&ConnStatsSnapshot) -> bool) {
    wait_until(what, || probe(&server.conn_stats()));
}

fn predict_request(input_len: usize) -> Vec<u8> {
    let body: Vec<String> = (0..input_len).map(|i| format!("{}", i as f32 * 0.01)).collect();
    let body = format!("[{}]", body.join(","));
    format!("POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()).into_bytes()
}

fn full_round_trip(server: &Server) {
    let mut s = connect(server);
    s.write_all(&predict_request(64)).expect("write");
    s.shutdown(std::net::Shutdown::Write).expect("half close");
    let mut response = Vec::new();
    s.read_to_end(&mut response).expect("read");
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "healthy client failed: {text}");
}

/// Slowloris: a client that starts a request head and then stalls. The
/// read deadline must fire, answer 408 (the request was underway), count
/// a timeout, and free the slot.
#[test]
fn slowloris_stall_hits_the_read_deadline() {
    for server in front_ends() {
        let mut s = connect(&server);
        // A dribble of request head, never finished.
        s.write_all(b"POST /predict HTTP/1.1\r\nContent-Le").expect("drip");
        wait_for_stats(&server, "slowloris connection accepted", |st| st.accepted == 1);

        // The server must cut the connection: EOF arrives, preceded by a
        // best-effort 408.
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).expect("read until server closes");
        let text = String::from_utf8_lossy(&rest);
        assert!(
            text.starts_with("HTTP/1.1 408 "),
            "expected a 408 before the close, got: {text:?}"
        );
        wait_for_stats(&server, "slot freed + timeout counted", |st| {
            st.active == 0 && st.timeouts == 1 && st.closed == 1
        });
        server.stop();
    }
}

/// An idle connection (no bytes at all) is reaped silently: close without
/// a 408 — there was no request to answer.
#[test]
fn idle_connection_is_reaped_silently() {
    for server in front_ends() {
        let mut s = connect(&server);
        wait_for_stats(&server, "idle connection accepted", |st| st.accepted == 1);
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).expect("read until server closes");
        assert!(rest.is_empty(), "idle close must not write: {:?}", String::from_utf8_lossy(&rest));
        wait_for_stats(&server, "idle slot freed", |st| st.active == 0 && st.closed == 1);
        server.stop();
    }
}

/// A client that dies mid-body must not leak its slot: the server sees
/// EOF inside a request and releases the connection.
#[test]
fn mid_body_disconnect_frees_the_slot() {
    for server in front_ends() {
        let request = predict_request(64);
        for round in 1..=3u64 {
            let mut s = connect(&server);
            // Head plus half the body, then a hard drop.
            s.write_all(&request[..request.len() - 40]).expect("partial write");
            wait_for_stats(&server, "partial connection accepted", |st| st.accepted == round);
            drop(s);
            wait_for_stats(&server, "slot freed after disconnect", |st| {
                st.active == 0 && st.closed == round
            });
        }
        // The server is still fully healthy for the next client.
        full_round_trip(&server);
        server.stop();
    }
}

/// A stalled reader — request sent, response never read — cannot wedge
/// the server: other clients keep getting answers, and the stalled
/// connection is eventually reaped by the read deadline.
#[test]
fn stalled_reader_cannot_wedge_the_server() {
    for server in front_ends() {
        // The stalled client: fires a request, then never reads.
        let mut stalled = connect(&server);
        stalled.write_all(&predict_request(64)).expect("write");
        wait_for_stats(&server, "stalled request answered", |st| st.responses >= 1);

        // While it sits there, other clients get full service.
        for _ in 0..5 {
            full_round_trip(&server);
        }

        // The stalled connection is reaped once the deadline passes
        // (silently: its response was flushed, so it is merely idle).
        wait_for_stats(&server, "stalled connection reaped", |st| st.active == 0);
        drop(stalled);
        server.stop();
    }
}

/// Garbage bytes get the typed 400 and a close — and the server keeps
/// serving.
#[test]
fn garbage_bytes_answered_with_400_then_close() {
    for server in front_ends() {
        let mut s = connect(&server);
        s.write_all(b"\x01\x02\x03\x04garbage\r\n\r\n").expect("write");
        let mut response = Vec::new();
        s.read_to_end(&mut response).expect("read");
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 400 "), "got: {text}");
        assert!(text.contains("\r\nConnection: close\r\n"));
        full_round_trip(&server);
        server.stop();
    }
}

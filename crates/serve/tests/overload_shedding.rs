//! Graceful overload: load-aware 503 shedding, the hard connection cap,
//! and the drain guarantee — no in-flight request is dropped by
//! `/shutdown`.
//!
//! The scheduler is made deterministic with a `GatedRunner`: a
//! [`BatchRunner`] double (plugged in through
//! `EngineRegistry::register_runner_as`) that signals when a batch
//! *enters* `run_batch` and then blocks until the test releases it. That
//! handshake pins the worker mid-batch, so queue depths — and therefore
//! shedding decisions — are exact, not racy.

use pecan_serve::{
    BatchRunner, ConnStatsSnapshot, EngineRegistry, SchedulerConfig, ServeError, Server,
    ServerConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Signals `entered` when a batch starts, then blocks until `release`
/// yields a token (or closes). Output: the input's sum, so correctness is
/// still checkable end-to-end.
struct GatedRunner {
    entered: mpsc::Sender<()>,
    release: Mutex<mpsc::Receiver<()>>,
}

impl BatchRunner for GatedRunner {
    fn input_len(&self) -> usize {
        4
    }
    fn output_len(&self) -> usize {
        1
    }
    fn run_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ServeError> {
        let _ = self.entered.send(());
        // Hold the worker until the test releases the gate; a closed
        // channel (sender dropped) releases everything.
        let _ = self.release.lock().unwrap().recv();
        Ok(inputs.iter().map(|i| vec![i.iter().sum()]).collect())
    }
}

struct Gated {
    server: Server,
    entered: mpsc::Receiver<()>,
    release: mpsc::Sender<()>,
}

fn start_gated(event_loop: bool, queue_capacity: usize) -> Gated {
    let (entered_tx, entered) = mpsc::channel();
    let (release, release_rx) = mpsc::channel();
    let runner = Arc::new(GatedRunner { entered: entered_tx, release: Mutex::new(release_rx) });
    let scheduler = SchedulerConfig {
        max_batch: 1,
        max_wait: Duration::ZERO,
        queue_capacity,
        workers: 1,
    };
    let registry = EngineRegistry::new();
    registry.register_runner_as("gated", runner, scheduler).expect("register double");
    let config = ServerConfig {
        event_loop,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let server = Server::start_registry(registry, config).expect("server starts");
    Gated { server, entered, release }
}

fn front_end_flags() -> Vec<bool> {
    if pecan_serve::event_loop_supported() {
        vec![false, true]
    } else {
        vec![false]
    }
}

fn connect(server: &Server) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

fn wait_until(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for: {what}");
}

fn wait_for_stats(server: &Server, what: &str, probe: impl Fn(&ConnStatsSnapshot) -> bool) {
    wait_until(what, || probe(&server.conn_stats()));
}

fn predict_request() -> &'static [u8] {
    b"POST /predict HTTP/1.1\r\nContent-Length: 9\r\n\r\n[1,2,3,4]"
}

/// Reads one `Content-Length`-framed response off the socket.
fn read_response(s: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head_end = pos + 4;
            let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
            let need: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("Content-Length")
                .trim()
                .parse()
                .expect("numeric");
            while buf.len() < head_end + need {
                let n = s.read(&mut chunk).expect("read body");
                assert!(n > 0, "EOF inside body");
                buf.extend_from_slice(&chunk[..n]);
            }
            return String::from_utf8_lossy(&buf[..head_end + need]).into_owned();
        }
        let n = s.read(&mut chunk).expect("read head");
        assert!(n > 0, "EOF inside head: {:?}", String::from_utf8_lossy(&buf));
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Queue pressure: with the worker pinned and the queue at the shed
/// threshold, the next predict gets a typed 503 with `Retry-After` —
/// and every request admitted before the threshold still completes.
#[test]
fn queue_pressure_sheds_with_typed_503() {
    for event_loop in front_end_flags() {
        // queue_capacity 4, shed_fraction 0.9 → shedding from depth 3.
        let gated = start_gated(event_loop, 4);
        let server = &gated.server;

        // First request: the worker dequeues it and blocks inside
        // run_batch. The queue is now empty and the worker is pinned.
        let mut pinned = connect(server);
        pinned.write_all(predict_request()).expect("write");
        gated.entered.recv_timeout(Duration::from_secs(5)).expect("worker entered run_batch");

        // Three more fill the queue to the shed threshold.
        let mut queued: Vec<TcpStream> = (0..3)
            .map(|_| {
                let mut s = connect(server);
                s.write_all(predict_request()).expect("write");
                s
            })
            .collect();
        let scheduler_stats =
            || server.registry().default_model().stats();
        wait_until("queue filled to the shed threshold", || scheduler_stats().submitted == 4);

        // One more: shed, not enqueued.
        let mut extra = connect(server);
        extra.write_all(predict_request()).expect("write");
        let response = read_response(&mut extra);
        assert!(response.starts_with("HTTP/1.1 503 "), "expected shed 503: {response}");
        assert!(response.contains("\r\nRetry-After: 1\r\n"), "503 must carry Retry-After");
        assert!(response.contains("overloaded"), "typed overload body: {response}");
        let snapshot = server.conn_stats();
        assert_eq!(snapshot.shed_requests, 1);
        assert_eq!(scheduler_stats().submitted, 4, "the shed request never reached the queue");

        // Release the gate: everything admitted completes, nothing lost.
        drop(gated.release);
        let answer = read_response(&mut pinned);
        assert!(answer.contains("\"output\":[10"), "sum of [1,2,3,4]: {answer}");
        for s in &mut queued {
            let answer = read_response(s);
            assert!(answer.starts_with("HTTP/1.1 200 OK\r\n"), "queued request lost: {answer}");
        }
        assert_eq!(scheduler_stats().completed, 4);
        assert_eq!(scheduler_stats().rejected, 0, "shedding kept the hard bound untouched");
        wait_for_stats(server, "all responses counted", |st| {
            st.requests == 5 && st.responses == 5 && st.inflight == 0
        });
        server.stop();
    }
}

/// The connection cap: sockets beyond `max_connections` are answered with
/// an immediate 503 and closed; established connections are untouched,
/// and a freed slot is reusable.
#[test]
fn connection_cap_sheds_new_sockets() {
    for event_loop in front_end_flags() {
        let config = ServerConfig {
            scheduler: SchedulerConfig { max_batch: 1, ..SchedulerConfig::default() },
            event_loop,
            max_connections: 2,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        let server =
            Server::start(Arc::new(pecan_serve::demo::mlp_engine(42)), config).expect("start");

        // Fill both slots with live keep-alive connections.
        let mut held: Vec<TcpStream> = (0..2).map(|_| connect(&server)).collect();
        wait_for_stats(&server, "both slots occupied", |st| st.active == 2);

        // The third socket is shed: a 503 arrives unprompted, then EOF.
        let mut shed = connect(&server);
        let mut bytes = Vec::new();
        shed.read_to_end(&mut bytes).expect("read shed response");
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("HTTP/1.1 503 "), "expected cap 503: {text}");
        assert!(text.contains("\r\nRetry-After: 1\r\n"));
        wait_for_stats(&server, "shed counted", |st| {
            st.shed_connections == 1 && st.active == 2
        });

        // Held connections still serve.
        let healthz = b"GET /healthz HTTP/1.1\r\n\r\n";
        for s in &mut held {
            s.write_all(healthz).expect("write");
            let response = read_response(s);
            assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        }

        // Freeing a slot re-opens the door.
        drop(held.pop());
        wait_for_stats(&server, "slot freed", |st| st.active == 1);
        let mut next = connect(&server);
        next.write_all(healthz).expect("write");
        let response = read_response(&mut next);
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        server.stop();
    }
}

/// `/shutdown` while requests are mid-flight: the drain completes every
/// admitted request before the server exits — zero dropped.
#[test]
fn shutdown_drains_in_flight_requests() {
    for event_loop in front_end_flags() {
        let gated = start_gated(event_loop, 8);

        // One request pinned in the worker, one waiting in the queue.
        let mut pinned = connect(&gated.server);
        pinned.write_all(predict_request()).expect("write");
        gated.entered.recv_timeout(Duration::from_secs(5)).expect("worker entered run_batch");
        let mut waiting = connect(&gated.server);
        waiting.write_all(predict_request()).expect("write");
        let scheduler_stats = {
            let server = &gated.server;
            move || server.registry().default_model().stats()
        };
        wait_until("second request queued", || scheduler_stats().submitted == 2);

        // Shutdown is acknowledged while both are still unanswered.
        let mut admin = connect(&gated.server);
        admin.write_all(b"POST /shutdown HTTP/1.1\r\n\r\n").expect("write");
        let ack = read_response(&mut admin);
        assert!(ack.starts_with("HTTP/1.1 200 OK\r\n"), "shutdown ack: {ack}");

        let addr = gated.server.local_addr();
        let server = gated.server;
        // `stop()` performs the same drain `run()` ends with; doing it on a
        // side thread keeps this one free to read the draining responses.
        let waiter = std::thread::spawn(move || {
            server.stop();
            server.conn_stats()
        });

        // Release the gate; the drain must now flush both answers.
        drop(gated.release);
        let first = read_response(&mut pinned);
        assert!(first.contains("\"output\":[10"), "pinned request dropped: {first}");
        let second = read_response(&mut waiting);
        assert!(second.contains("\"output\":[10"), "queued request dropped: {second}");

        let snapshot = waiter.join().expect("run() returns after the drain");
        assert_eq!(snapshot.requests, 3, "pinned + queued + shutdown");
        assert_eq!(snapshot.responses, 3, "every admitted request was answered");
        assert_eq!(snapshot.inflight, 0);
        // The listener is gone: nothing new is served after the drain.
        let _ = TcpStream::connect(addr);
    }
}

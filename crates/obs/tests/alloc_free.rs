//! Allocation-regression tests for the observability primitives
//! themselves, run under the counting allocator.
//!
//! `hist.rs` documents `Histogram::record` as allocation-free and the
//! span substrate promises a recorded span costs no heap after its
//! thread's ring exists; with [`PecanAlloc`] installed as the global
//! allocator those claims become asserted invariants.

use pecan_obs::{alloc_counts, Histogram, PecanAlloc};

#[global_allocator]
static ALLOC: PecanAlloc = PecanAlloc;

/// Allocations on this thread while `f` runs.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = alloc_counts().0;
    f();
    alloc_counts().0 - before
}

#[test]
fn histogram_record_is_allocation_free() {
    let hist = Histogram::new();
    hist.record(1); // touch any lazy paths before counting
    let n = allocs_during(|| {
        for v in 0..10_000u64 {
            hist.record(v * 37);
        }
    });
    assert_eq!(n, 0, "Histogram::record allocated {n} times");
}

#[test]
fn histogram_merge_and_snapshot_do_allocate_but_record_stays_clean() {
    // Guard against the counter itself being dead: snapshot allocates.
    let hist = Histogram::new();
    hist.record(42);
    assert!(
        allocs_during(|| {
            std::hint::black_box(hist.snapshot());
        }) > 0
    );
}

#[test]
fn span_recording_is_allocation_free_after_ring_claim() {
    pecan_obs::set_tracing(true);
    // First span claims this thread's ring (allocates once); the steady
    // state must be clean.
    {
        let _warm = pecan_obs::span("alloc_test.warm");
    }
    let n = allocs_during(|| {
        for _ in 0..1_000 {
            let _s = pecan_obs::span_with_id("alloc_test.steady", 7);
        }
    });
    pecan_obs::set_tracing(false);
    assert_eq!(n, 0, "span record allocated {n} times after warm-up");
}

#[test]
fn disabled_span_is_allocation_free_from_the_first_call() {
    pecan_obs::set_tracing(false);
    let n = allocs_during(|| {
        for _ in 0..1_000 {
            let _s = pecan_obs::span("alloc_test.disabled");
        }
    });
    assert_eq!(n, 0, "disabled span allocated {n} times");
}

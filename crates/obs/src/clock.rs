//! Per-thread CPU-time clock: `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`
//! as a raw syscall, no libc.
//!
//! Span tracing reports wall time *and* CPU time per span so that time a
//! thread spends blocked — queue waits, condvar parks, `epoll_pwait` —
//! shows up as `wall ≫ cpu` instead of being indistinguishable from
//! compute. The build environment is offline, so the clock is wired
//! straight to the kernel with an `asm!`-issued syscall in the same style
//! as `pecan-serve`'s epoll layer. Supported on `x86_64` and `aarch64`
//! Linux; everywhere else [`thread_cpu_ns`] returns 0, which keeps the
//! `wall ≥ cpu` invariant trivially true.

/// Nanoseconds of CPU time consumed by the calling thread, or 0 where
/// the per-thread clock is unavailable (non-Linux, other architectures).
///
/// Monotone per thread. The value is only meaningful as a difference
/// between two readings on the same thread.
pub fn thread_cpu_ns() -> u64 {
    imp::thread_cpu_ns()
}

/// True when [`thread_cpu_ns`] reads a real per-thread CPU clock rather
/// than returning the constant-zero fallback.
pub fn thread_cpu_supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64"),
        not(miri)
    ))
}

/// The raw-syscall implementation. This is one of the three confined
/// unsafe islands of the crate (see `Cargo.toml`): the unsafety is
/// issuing one syscall whose only pointer argument is a stack-resident
/// `timespec` the kernel writes during the call.
// Miri cannot execute inline-asm syscalls; under it the portable
// constant-zero fallback below takes over, keeping the module testable.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(miri)
))]
#[allow(unsafe_code)]
mod imp {
    /// `CLOCK_THREAD_CPUTIME_ID`: CPU time consumed by this thread only.
    const CLOCK_THREAD_CPUTIME: usize = 3;

    #[cfg(target_arch = "x86_64")]
    const NR_CLOCK_GETTIME: usize = 228;
    #[cfg(target_arch = "aarch64")]
    const NR_CLOCK_GETTIME: usize = 113;

    /// One `struct timespec` as the kernel fills it on 64-bit targets.
    #[repr(C)]
    #[derive(Default)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    // SAFETY: to call, `n` must be a syscall number whose two arguments
    // match `a0`/`a1`; any pointer passed must be valid for the kernel's
    // access pattern for the duration of the call.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall2(n: usize, a0: usize, a1: usize) -> isize {
        let ret: isize;
        // SAFETY: the x86_64 Linux syscall ABI — args in rdi/rsi, number
        // in rax, rcx/r11 clobbered by `syscall` — matches the operand
        // list; the caller guarantees the arguments themselves.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") n as isize => ret,
                in("rdi") a0,
                in("rsi") a1,
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
        }
        ret
    }

    // SAFETY: same caller contract as the x86_64 variant above.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall2(n: usize, a0: usize, a1: usize) -> isize {
        let ret: isize;
        // SAFETY: the aarch64 Linux syscall ABI — args in x0/x1, number
        // in x8, return in x0 — matches the operand list; the caller
        // guarantees the arguments themselves.
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") a0 as isize => ret,
                in("x1") a1,
                in("x8") n,
                options(nostack),
            );
        }
        ret
    }

    pub fn thread_cpu_ns() -> u64 {
        let mut ts = Timespec::default();
        // SAFETY: the pointer is to a live stack `timespec` that the
        // kernel writes only for the duration of the call.
        let ret = unsafe {
            syscall2(
                NR_CLOCK_GETTIME,
                CLOCK_THREAD_CPUTIME,
                std::ptr::addr_of_mut!(ts) as usize,
            )
        };
        if ret < 0 {
            return 0;
        }
        (ts.tv_sec as u64).saturating_mul(1_000_000_000).saturating_add(ts.tv_nsec as u64)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(miri)
)))]
mod imp {
    /// Portable fallback: no per-thread CPU clock without libc, so report
    /// zero. Span CPU deltas then read 0 ≤ wall, never nonsense.
    pub fn thread_cpu_ns() -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_clock_is_monotone_and_advances_under_load() {
        if !thread_cpu_supported() {
            assert_eq!(thread_cpu_ns(), 0);
            return;
        }
        let a = thread_cpu_ns();
        // Burn CPU on this thread; the per-thread clock must advance.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert_ne!(acc, 1); // keep the loop observable
        let b = thread_cpu_ns();
        assert!(b >= a, "CPU clock went backwards: {a} -> {b}");
        assert!(b > a, "CPU clock did not advance across a compute loop");
    }

    #[test]
    fn sleeping_consumes_little_cpu_time() {
        if !thread_cpu_supported() {
            return;
        }
        let a = thread_cpu_ns();
        std::thread::sleep(std::time::Duration::from_millis(30));
        let cpu = thread_cpu_ns() - a;
        // The whole point of the clock: blocked time is not CPU time.
        assert!(cpu < 25_000_000, "sleep consumed {cpu} ns of CPU");
    }
}

//! # pecan-obs — observability substrate for the PECAN workspace
//!
//! Every compute crate in the workspace (tensor, index, cam, core,
//! serve, bench) depends on this one, so it is deliberately std-only
//! and tiny. It provides five things:
//!
//! 1. **Span tracing** ([`span()`], [`span_with_id`], [`SpanGuard`]):
//!    hierarchical wall/CPU/allocation-attributed regions recorded into
//!    lock-free per-thread rings, behind a process-wide enable flag
//!    ([`set_tracing`]) so disabled tracing costs one relaxed atomic
//!    load. See [`span`](mod@crate::span) for the recording model.
//! 2. **Chrome trace export** ([`chrome`]): captures render as
//!    Perfetto-compatible trace-event JSON via [`capture_window_json`]
//!    (the `/debug/trace?ms=N` route) and [`dump_all_json`]
//!    (`serve --trace-file`).
//! 3. **Per-thread CPU time** ([`clock`]): raw
//!    `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` syscall so spans split
//!    wall time from CPU time and blocking becomes visible.
//! 4. **Allocation counting** ([`PecanAlloc`], [`alloc_counts`]): an
//!    opt-in `#[global_allocator]` that tallies per-thread
//!    allocations, used by tests to assert allocation-free hot paths
//!    and by spans to attribute allocs per region.
//! 5. **Serving primitives hoisted from `pecan-serve`**: the lock-free
//!    [`Histogram`] and the logfmt [`log`] macros, re-exported from
//!    `pecan_serve::obs` unchanged so existing paths keep working.
//!
//! ## Instrumenting code
//!
//! ```
//! fn hot_region() {
//!     let _span = pecan_obs::span("my.region");
//!     // ... work measured until `_span` drops ...
//! }
//!
//! pecan_obs::set_tracing(true);
//! hot_region();
//! pecan_obs::set_tracing(false);
//! let trace_json = pecan_obs::chrome::dump_all_json();
//! assert!(trace_json.contains("my.region"));
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
pub mod chrome;
pub mod clock;
pub mod hist;
pub mod log;
pub mod span;

pub use alloc::{alloc_counts, PecanAlloc};
pub use chrome::{capture_window_json, dump_all_json};
pub use clock::{thread_cpu_ns, thread_cpu_supported};
pub use hist::{Histogram, HistogramSnapshot};
pub use log::Level;
pub use span::{
    now_ns, set_tracing, span, span_with_id, tracing_enabled, SpanGuard, SpanRecord,
};

//! Lock-free, fixed-memory, log-bucketed latency histogram.
//!
//! HDR-style layout: values below [`SUBS`] land in unit-wide buckets;
//! above that, each power-of-two octave is split into [`SUBS`] equal
//! sub-buckets, so the bucket width is always ≤ `value / SUBS` and any
//! reported quantile overshoots the true order statistic by at most
//! `1/SUBS` relative error (+1 for the unit-bucket floor). The whole
//! `u64` range maps into [`BUCKETS`] = 1920 buckets (~15 KiB), recorded
//! with relaxed atomics only — no locks, no allocation, no CAS loops on
//! the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution bits: each octave splits into `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32) — bounds the relative quantile error at
/// `1/SUBS`.
pub const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUBS as usize;

/// Maps a value to its bucket index. Monotone, total over `u64`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUBS {
        value as usize
    } else {
        // Highest set bit h ≥ SUB_BITS; keep the SUB_BITS bits below it.
        let h = 63 - value.leading_zeros();
        let row = (h - SUB_BITS + 1) as usize;
        let sub = ((value >> (h - SUB_BITS)) & (SUBS - 1)) as usize;
        row * SUBS as usize + sub
    }
}

/// Smallest value mapping to bucket `index`.
#[inline]
pub fn bucket_floor(index: usize) -> u64 {
    let row = index as u64 / SUBS;
    let sub = index as u64 % SUBS;
    if row == 0 {
        sub
    } else {
        (SUBS + sub) << (row - 1)
    }
}

/// Largest value mapping to bucket `index` (saturates at `u64::MAX`).
#[inline]
pub fn bucket_ceil(index: usize) -> u64 {
    let row = index as u64 / SUBS;
    let width = if row == 0 { 1 } else { 1u64 << (row - 1) };
    bucket_floor(index).wrapping_add(width - 1)
}

/// Lock-free latency histogram: fixed memory, relaxed atomics, mergeable.
///
/// `record` is wait-free (three `fetch_add`s and a `fetch_max`, all
/// `Ordering::Relaxed`), so workers and front ends can share one
/// histogram through an `Arc` without contention beyond cache traffic.
/// Quantiles are answered from a [`HistogramSnapshot`]; the recorded
/// true maximum tightens the top bucket's ceiling.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // ordering: Relaxed — debug peek at the same monotone counters
        // `record` bumps; exactness is not part of the contract.
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Wait-free; relaxed atomics only.
    #[inline]
    pub fn record(&self, value: u64) {
        // ordering: Relaxed — pairs with the Relaxed loads in `snapshot`
        // / `merge_from` / `count`. Each counter is independently
        // monotone and the readers' contract is explicitly "coherent-
        // enough": no reader infers one counter's value from another, so
        // no ordering between the four RMWs is needed — only atomicity.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        // ordering: Relaxed — pairs with `record`'s Relaxed fetch_add;
        // a monotone counter read in isolation needs no ordering.
        self.count.load(Ordering::Relaxed)
    }

    /// Adds every bucket of `other` into `self` (e.g. to aggregate
    /// per-worker histograms). Concurrent recording on either side is
    /// fine; the merge is then a point-in-time-ish view like any other
    /// relaxed read.
    pub fn merge_from(&self, other: &Histogram) {
        // ordering: Relaxed throughout — reads pair with `record`'s
        // Relaxed RMWs on `other`, writes with the readers of `self`;
        // the doc contract above says the merge is a relaxed
        // point-in-time-ish view, same as `snapshot`.
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        // ordering: Relaxed — same pairing as the bucket loop above.
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Coherent-enough point-in-time copy for quantile queries and export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            // ordering: Relaxed — pairs with `record`'s Relaxed RMWs.
            // Counters may be mid-update relative to each other;
            // quantile math tolerates that ("coherent-enough" above).
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// One reading of a [`Histogram`]: plain integers, ready for quantile
/// queries, merging, and Prometheus export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (count 0).
    pub fn empty() -> Self {
        Self { buckets: vec![0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wraps past `u64::MAX`, like the recorder).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest value recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact-rank quantile with bounded relative error.
    ///
    /// Computes rank `max(1, ceil(q·count))` and returns the ceiling of
    /// the bucket holding that order statistic (clamped to the recorded
    /// max). The answer `a` vs the true order statistic `o` satisfies
    /// `o ≤ a ≤ o + o/SUBS + 1` — never an underestimate, and at most
    /// `1/32` relative overshoot. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_ceil(i).min(self.max);
            }
        }
        self.max
    }

    /// Element-wise sum of two snapshots (the snapshot-level mirror of
    /// [`Histogram::merge_from`]). Commutative and associative.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(other.buckets.iter())
                .map(|(a, b)| a.wrapping_add(*b))
                .collect(),
            count: self.count.wrapping_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// Occupied buckets as `(floor, ceil, count)`, ascending — the raw
    /// material for Prometheus `_bucket` series.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (bucket_floor(i), bucket_ceil(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry_is_a_partition() {
        // Floors strictly increase, each ceiling abuts the next floor, and
        // index() maps both endpoints back to the bucket.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "floor of bucket {i}");
            assert_eq!(bucket_index(bucket_ceil(i)), i, "ceil of bucket {i}");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_ceil(i) + 1, bucket_floor(i + 1), "gap after bucket {i}");
            }
        }
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_ceil(BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUBS {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..SUBS {
            let q = (v + 1) as f64 / SUBS as f64;
            assert_eq!(snap.quantile(q), v, "quantile {q}");
        }
        assert_eq!(snap.max(), SUBS - 1);
        assert_eq!(snap.sum(), SUBS * (SUBS - 1) / 2);
    }

    #[test]
    fn quantile_bounds_hold_on_a_known_set() {
        let h = Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| i * i * 37 + 5).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let got = snap.quantile(q);
            assert!(got >= oracle, "q={q}: {got} < oracle {oracle}");
            assert!(got - oracle <= oracle / SUBS + 1, "q={q}: {got} too far above {oracle}");
        }
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.nonzero_buckets().count(), 0);
    }

    #[test]
    fn merge_from_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        b.record(20);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.max(), 1_000_000);
        assert_eq!(snap.quantile(1.0), 1_000_000);
    }
}

//! Hierarchical span tracing: thread-local span stacks writing completed
//! spans into lock-free per-thread ring buffers.
//!
//! # Hot-path contract
//!
//! Tracing is off by default. [`span`] starts by loading one process-wide
//! atomic flag with `Ordering::Relaxed`; when the flag is clear it
//! returns an inert guard and touches nothing else — no thread-local, no
//! clock, no allocation. That single load is the entire cost the
//! instrumented kernels (GEMM, index scans, im2col, the scheduler) pay
//! in production.
//!
//! # Recording model
//!
//! When tracing is on, a [`SpanGuard`] snapshots wall time, per-thread
//! CPU time ([`crate::clock`]) and the allocation counters
//! ([`crate::alloc_counts`]) at construction, and on drop writes **one
//! completed-span record** into its thread's ring buffer. Begin/end
//! events are synthesized at export time from the complete record, which
//! makes every exported capture balanced by construction — a span still
//! open when a capture ends simply isn't in it.
//!
//! Rings are fixed-capacity ([`RING_EVENTS`] records, seqlock-published
//! like `pecan-serve`'s flight recorder) and single-writer: each thread
//! claims one on its first recorded span and returns it to a pool at
//! thread exit, so short-lived worker threads (GEMM's scoped row workers)
//! reuse rings instead of growing the registry per call. Readers
//! ([`collect_spans`]) validate each slot's sequence word and skip
//! records caught mid-write. Under wrap-around the oldest spans are
//! overwritten — this is a flight recorder for profiling windows, not an
//! audit log.

use crate::alloc::alloc_counts;
use crate::clock::thread_cpu_ns;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Completed-span records each per-thread ring holds before wrapping.
pub const RING_EVENTS: usize = 4096;
/// Cap on distinct rings; threads beyond it trace into the void rather
/// than growing memory without bound.
const MAX_RINGS: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when span tracing is recording. One relaxed load — this is the
/// only thing a disabled [`span`] call does.
#[inline]
pub fn tracing_enabled() -> bool {
    // ordering: Relaxed — pairs with the Relaxed store in `set_tracing`.
    // The flag carries no data; ring writes are ordered by each slot's
    // seqlock word, so a late/early flag read only shifts which spans
    // get recorded, never what a reader observes.
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide. Spans already open keep
/// recording to completion; spans started while off are never recorded.
pub fn set_tracing(enabled: bool) {
    // ordering: Relaxed — pairs with the load in `tracing_enabled`; see
    // there for why no ordering is needed on the flag itself.
    ENABLED.store(enabled, Ordering::Relaxed);
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first use of this module) —
/// the time base of every [`SpanRecord::begin_ns`].
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One completed span as read back out of a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name, e.g. `"gemm"` or `"scheduler.batch"`.
    pub name: &'static str,
    /// Caller-supplied correlation id (request id, batch id); 0 = none.
    pub id: u64,
    /// Nesting depth on its thread when the span began (0 = root).
    pub depth: u32,
    /// Start time, ns since the trace epoch ([`now_ns`]).
    pub begin_ns: u64,
    /// Wall-clock duration in ns.
    pub wall_ns: u64,
    /// Thread CPU time consumed inside the span, ns. Clamped to
    /// `wall_ns`, so `wall ≥ cpu` holds unconditionally.
    pub cpu_ns: u64,
    /// Heap allocations inside the span (0 unless [`crate::PecanAlloc`]
    /// is installed).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

const WORDS: usize = 9;

impl SpanRecord {
    fn to_words(self) -> [u64; WORDS] {
        let (ptr, len) = names::pack(self.name);
        [
            ptr,
            len,
            self.id,
            self.depth as u64,
            self.begin_ns,
            self.wall_ns,
            self.cpu_ns,
            self.allocs,
            self.alloc_bytes,
        ]
    }

    fn from_words(w: [u64; WORDS]) -> Self {
        Self {
            name: names::unpack(w[0], w[1]),
            id: w[2],
            depth: w[3] as u32,
            begin_ns: w[4],
            wall_ns: w[5],
            cpu_ns: w[6],
            allocs: w[7],
            alloc_bytes: w[8],
        }
    }

    /// End time, ns since the trace epoch.
    pub fn end_ns(&self) -> u64 {
        self.begin_ns.saturating_add(self.wall_ns)
    }
}

/// Round trip of a `&'static str` through two `u64` ring words. The
/// second confined unsafe island of the crate (see `Cargo.toml`).
///
/// Under Miri the pointer→integer→pointer trip would discard provenance,
/// so an interning side-table replaces it: `pack` hands out a table index
/// instead of an address and `unpack` looks the name back up. Same
/// signatures, no unsafe, provenance-clean.
#[allow(unsafe_code)]
mod names {
    #[cfg(not(miri))]
    pub fn pack(name: &'static str) -> (u64, u64) {
        (name.as_ptr() as u64, name.len() as u64)
    }

    /// SAFETY (contract): `(ptr, len)` pairs only ever enter a ring
    /// through [`pack`], and the seqlock protocol guarantees a reader
    /// sees both words from the *same* record or none — so the pair
    /// always describes a live `&'static str`.
    #[cfg(not(miri))]
    pub fn unpack(ptr: u64, len: u64) -> &'static str {
        // SAFETY: see the contract above — the pair came from `pack`,
        // whose input was a valid `&'static str`.
        unsafe {
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                ptr as *const u8,
                len as usize,
            ))
        }
    }

    #[cfg(miri)]
    static INTERNED: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new());

    #[cfg(miri)]
    pub fn pack(name: &'static str) -> (u64, u64) {
        let mut table = INTERNED.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let idx = match table.iter().position(|n| std::ptr::eq(*n, name)) {
            Some(idx) => idx,
            None => {
                table.push(name);
                table.len() - 1
            }
        };
        (idx as u64, name.len() as u64)
    }

    #[cfg(miri)]
    pub fn unpack(idx: u64, _len: u64) -> &'static str {
        INTERNED.lock().unwrap_or_else(std::sync::PoisonError::into_inner)[idx as usize]
    }
}

/// One ring slot: seqlock word + record words, exactly the publication
/// protocol of `pecan-serve`'s `FlightRecorder` (odd while storing, even
/// when consistent, 0 never written).
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

/// A single-writer span ring. The owning thread is the only `push`er;
/// any thread may read via [`ThreadRing::drain_consistent`].
struct ThreadRing {
    /// Stable export tid.
    id: u32,
    in_use: AtomicBool,
    /// Name of the thread currently (or last) writing here.
    label: Mutex<String>,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadRing {
    fn new(id: u32) -> Self {
        Self {
            id,
            in_use: AtomicBool::new(true),
            label: Mutex::new(String::new()),
            head: AtomicU64::new(0),
            slots: (0..RING_EVENTS).map(|_| Slot::default()).collect(),
        }
    }

    fn push(&self, record: SpanRecord) {
        // ordering: Relaxed — single-writer counter (only the owning
        // thread pushes); readers take their snapshot of `head` in
        // `drain_consistent` and validate each slot via `seq`, so the
        // counter itself needs only atomicity.
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        slot.seq.store(2 * n + 1, Ordering::Release);
        // ordering: Relaxed — the word stores are fenced by the two
        // Release stores of `seq` around them and pair with the Acquire
        // loads of `seq` in `drain_consistent`: a reader that sees
        // `2n + 2` before *and* after copying saw every word of record n.
        for (dst, src) in slot.words.iter().zip(record.to_words()) {
            dst.store(src, Ordering::Relaxed);
        }
        slot.seq.store(2 * n + 2, Ordering::Release);
    }

    fn drain_consistent(&self, out: &mut Vec<SpanRecord>) {
        // ordering: Relaxed — racy snapshot of the single-writer counter
        // in `push`; a stale value only under-reads the newest records,
        // and slot consistency is carried entirely by `seq` below.
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        for n in head.saturating_sub(cap)..head {
            let slot = &self.slots[(n % cap) as usize];
            let before = slot.seq.load(Ordering::Acquire);
            if before != 2 * n + 2 {
                continue; // torn, lapped, or never written
            }
            let mut words = [0u64; WORDS];
            // ordering: Relaxed — bracketed by the two Acquire loads of
            // `seq` (before/after), pairing with `push`'s Release stores;
            // if `seq` is unchanged across the copy, the words are from
            // record n.
            for (dst, src) in words.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) == before {
                out.push(SpanRecord::from_words(words));
            }
        }
    }
}

static REGISTRY: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

/// Pool-claims a ring for the calling thread: first a free one (its
/// previous owner exited), else a fresh one up to [`MAX_RINGS`].
fn claim_ring() -> Option<Arc<ThreadRing>> {
    let mut registry = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // ordering: Relaxed — `in_use` claims are serialized by the REGISTRY
    // mutex (this function holds it); the only unguarded touch is the
    // Relaxed release in `RingHandle::drop`, which at worst makes a
    // just-freed ring look busy for one claim attempt.
    let ring = match registry.iter().find(|r| !r.in_use.load(Ordering::Relaxed)) {
        Some(free) => {
            free.in_use.store(true, Ordering::Relaxed);
            Arc::clone(free)
        }
        None if registry.len() < MAX_RINGS => {
            let ring = Arc::new(ThreadRing::new(registry.len() as u32));
            registry.push(Arc::clone(&ring));
            ring
        }
        None => return None,
    };
    let label = std::thread::current()
        .name()
        .map_or_else(|| format!("thread-{}", ring.id), str::to_owned);
    *ring.label.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = label;
    Some(ring)
}

/// Returns the ring to the pool when its owning thread exits. The
/// registry keeps the `Arc`, so recorded spans stay capturable.
struct RingHandle(Arc<ThreadRing>);

impl Drop for RingHandle {
    fn drop(&mut self) {
        // ordering: Relaxed — pairs with the mutex-guarded load in
        // `claim_ring`. No ring data rides on this flag: the next owner
        // writes slots through the seqlock protocol, never reads them.
        self.0.in_use.store(false, Ordering::Relaxed);
    }
}

enum RingSlot {
    Untried,
    Unavailable,
    Ready(RingHandle),
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static RING: RefCell<RingSlot> = const { RefCell::new(RingSlot::Untried) };
}

fn write_record(record: SpanRecord) {
    RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let RingSlot::Untried = *slot {
            *slot = match claim_ring() {
                Some(ring) => RingSlot::Ready(RingHandle(ring)),
                None => RingSlot::Unavailable,
            };
        }
        if let RingSlot::Ready(handle) = &*slot {
            handle.0.push(record);
        }
    });
}

/// Every consistent span record currently held by any ring whose span
/// lies **fully inside** `[since_ns, until_ns]`, as
/// `(tid, thread_label, records)` groups. Records within a group are in
/// ring order (completion order).
pub fn collect_spans(since_ns: u64, until_ns: u64) -> Vec<(u32, String, Vec<SpanRecord>)> {
    let rings: Vec<Arc<ThreadRing>> = REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(Arc::clone)
        .collect();
    let mut out = Vec::with_capacity(rings.len());
    let mut scratch = Vec::new();
    for ring in rings {
        scratch.clear();
        ring.drain_consistent(&mut scratch);
        let records: Vec<SpanRecord> = scratch
            .iter()
            .filter(|r| r.begin_ns >= since_ns && r.end_ns() <= until_ns)
            .copied()
            .collect();
        if !records.is_empty() {
            let label =
                ring.label.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
            out.push((ring.id, label, records));
        }
    }
    out.sort_by_key(|(id, _, _)| *id);
    out
}

/// Data captured when a span opens; turned into a [`SpanRecord`] on drop.
struct OpenSpan {
    name: &'static str,
    id: u64,
    depth: u32,
    begin_ns: u64,
    begin_cpu: u64,
    begin_allocs: u64,
    begin_bytes: u64,
}

/// RAII guard for one traced region; records the span when dropped.
/// Inert (a `None` payload) when tracing was off at construction.
#[must_use = "a span measures the region until the guard drops"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard").field("active", &self.open.is_some()).finish()
    }
}

/// Opens a span named `name` covering the region until the returned
/// guard drops. Costs one relaxed atomic load when tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with_id(name, 0)
}

/// [`span`] with a correlation id exported in the trace (`args.id`) —
/// request spans carry the flight-recorder request id, scheduler batch
/// spans the batch id, so trace timelines join against `/debug/requests`.
#[inline]
pub fn span_with_id(name: &'static str, id: u64) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { open: None };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    let (begin_allocs, begin_bytes) = alloc_counts();
    // Wall first, CPU second here — and CPU first, wall second at drop —
    // so the CPU window nests inside the wall window and `wall ≥ cpu`
    // holds by measurement order, not luck.
    let begin_ns = now_ns();
    let begin_cpu = thread_cpu_ns();
    SpanGuard {
        open: Some(OpenSpan { name, id, depth, begin_ns, begin_cpu, begin_allocs, begin_bytes }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        let end_cpu = thread_cpu_ns();
        let end_ns = now_ns();
        let (allocs, bytes) = alloc_counts();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let wall_ns = end_ns.saturating_sub(open.begin_ns);
        write_record(SpanRecord {
            name: open.name,
            id: open.id,
            depth: open.depth,
            begin_ns: open.begin_ns,
            wall_ns,
            // Clamped: the two clocks tick at different granularities, so
            // a tiny span could otherwise read cpu a hair above wall.
            cpu_ns: end_cpu.saturating_sub(open.begin_cpu).min(wall_ns),
            allocs: allocs.wrapping_sub(open.begin_allocs),
            alloc_bytes: bytes.wrapping_sub(open.begin_bytes),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global, so every test here serializes on
    // one lock and restores the disabled state before releasing it.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_tracing(true);
        let out = f();
        set_tracing(false);
        out
    }

    #[test]
    fn disabled_span_records_nothing() {
        set_tracing(false);
        let t0 = now_ns();
        {
            let _g = span("test.disabled");
        }
        let spans = collect_spans(t0, u64::MAX);
        assert!(
            spans.iter().all(|(_, _, rs)| rs.iter().all(|r| r.name != "test.disabled")),
            "disabled tracing must not record"
        );
    }

    #[test]
    fn spans_record_nesting_wall_and_cpu() {
        let (t0, t1) = with_tracing(|| {
            let t0 = now_ns();
            {
                let _outer = span("test.outer");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _inner = span_with_id("test.inner", 42);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            (t0, now_ns())
        });
        let groups = collect_spans(t0, t1);
        let all: Vec<SpanRecord> =
            groups.iter().flat_map(|(_, _, rs)| rs.iter().copied()).collect();
        let outer = all.iter().find(|r| r.name == "test.outer").expect("outer recorded");
        let inner = all.iter().find(|r| r.name == "test.inner").expect("inner recorded");
        assert_eq!(inner.id, 42);
        assert_eq!(outer.depth + 1, inner.depth, "inner nests under outer");
        assert!(outer.begin_ns <= inner.begin_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        for r in [outer, inner] {
            assert!(r.wall_ns >= r.cpu_ns, "wall {} < cpu {}", r.wall_ns, r.cpu_ns);
            assert!(r.wall_ns >= 1_000_000, "sleep must be visible in wall time");
        }
        // Sleeping threads burn (almost) no CPU: the wall/CPU split is real.
        assert!(outer.cpu_ns < outer.wall_ns, "sleep must not count as CPU time");
    }

    #[test]
    fn worker_threads_get_their_own_rings_and_window_filters() {
        let t0 = with_tracing(|| {
            let t0 = now_ns();
            std::thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(|| {
                        let _g = span("test.worker");
                        std::hint::black_box(17u64);
                    });
                }
            });
            t0
        });
        let t1 = now_ns();
        let groups = collect_spans(t0, t1);
        let worker_spans: usize = groups
            .iter()
            .map(|(_, _, rs)| rs.iter().filter(|r| r.name == "test.worker").count())
            .sum();
        assert_eq!(worker_spans, 3, "every worker span lands in a ring");
        // A window strictly before t0 holds none of them.
        let earlier = collect_spans(0, t0);
        assert!(earlier
            .iter()
            .all(|(_, _, rs)| rs.iter().all(|r| r.name != "test.worker")));
    }

    #[test]
    fn rings_are_pooled_across_sequential_threads() {
        with_tracing(|| {
            let count_rings = || REGISTRY.lock().unwrap().len();
            // Warm one pooled ring up front.
            std::thread::spawn(|| {
                let _g = span("test.pool");
            })
            .join()
            .unwrap();
            let after_first = count_rings();
            for _ in 0..8 {
                std::thread::spawn(|| {
                    let _g = span("test.pool");
                })
                .join()
                .unwrap();
            }
            // Sequential short-lived threads reuse pooled rings instead of
            // registering one each (other tests' live threads may hold a
            // few, hence ≤ +1 slack rather than strict equality).
            assert!(
                count_rings() <= after_first + 1,
                "8 sequential threads grew the registry from {after_first} to {}",
                count_rings()
            );
        });
    }
}

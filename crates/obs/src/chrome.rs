//! Chrome trace-event JSON export for span captures.
//!
//! Produces the `{"traceEvents": [...]}` JSON object format consumed by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`. Each
//! recorded [`SpanRecord`] becomes one `"B"`/`"E"` duration-event pair on
//! its thread's track; because the span substrate only records
//! *completed* spans, every export is balanced per thread by
//! construction. Timestamps are microseconds since the trace epoch with
//! nanosecond precision (three decimal places), and each begin event
//! carries the span's CPU time, allocation counters and correlation id
//! in `args`.
//!
//! The encoder is hand-rolled: span names are compile-time `&'static
//! str` identifiers and thread labels are generated, so the only
//! escaping JSON requires is the conservative string escape below.

use crate::span::{collect_spans, now_ns, set_tracing, tracing_enabled, SpanRecord};
use std::time::Duration;

/// Exports every span recorded so far (up to ring capacity) as Chrome
/// trace JSON. Used by `serve --trace-file` at shutdown.
pub fn dump_all_json() -> String {
    export_range_json(0, u64::MAX)
}

/// Records spans for `window`, then exports exactly the spans that ran
/// fully inside it. Backs `GET /debug/trace?ms=N`: tracing is forced on
/// for the window and restored to its previous state afterwards, so a
/// capture against an untraced server is self-contained. Blocks the
/// calling thread for the window.
pub fn capture_window_json(window: Duration) -> String {
    let was_enabled = tracing_enabled();
    set_tracing(true);
    let since = now_ns();
    std::thread::sleep(window);
    let until = now_ns();
    set_tracing(was_enabled);
    export_range_json(since, until)
}

/// Chrome trace JSON for every recorded span fully inside
/// `[since_ns, until_ns]` (trace-epoch nanoseconds).
pub fn export_range_json(since_ns: u64, until_ns: u64) -> String {
    let groups = collect_spans(since_ns, until_ns);
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |event: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&event);
    };
    push_event(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"pecan\"}}"
            .to_owned(),
    );
    for (tid, label, records) in &groups {
        push_event(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(label)
        ));
        for (_ts, json) in ordered_events(*tid, records) {
            push_event(json);
        }
    }
    out.push_str("]}");
    out
}

/// Begin/end events for one thread's records, ordered so that a viewer
/// replaying them top-down always sees a well-nested stack.
fn ordered_events(tid: u32, records: &[SpanRecord]) -> Vec<(u64, String)> {
    // Sort key: timestamp first; at equal timestamps close before open
    // (an `E` at t must precede an unrelated `B` at t), opens shallowest
    // first, closes deepest first.
    let mut events: Vec<((u64, u8, u32), String)> = Vec::with_capacity(records.len() * 2);
    for r in records {
        events.push((
            (r.begin_ns, 1, r.depth),
            format!(
                "{{\"name\":\"{}\",\"cat\":\"pecan\",\"ph\":\"B\",\"pid\":1,\
                 \"tid\":{tid},\"ts\":{},\"args\":{{\"cpu_ns\":{},\"allocs\":{},\
                 \"alloc_bytes\":{},\"id\":{}}}}}",
                escape(r.name),
                ts_us(r.begin_ns),
                r.cpu_ns,
                r.allocs,
                r.alloc_bytes,
                r.id,
            ),
        ));
        events.push((
            (r.end_ns(), 0, u32::MAX - r.depth),
            format!(
                "{{\"name\":\"{}\",\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{}}}",
                escape(r.name),
                ts_us(r.end_ns()),
            ),
        ));
    }
    events.sort_by_key(|e| e.0);
    events.into_iter().map(|((ts, _, _), json)| (ts, json)).collect()
}

/// Trace-epoch nanoseconds as the microsecond string Chrome expects,
/// keeping full nanosecond precision (`1234` ns → `"1.234"`).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_us_keeps_nanosecond_precision() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(1_234), "1.234");
        assert_eq!(ts_us(5_000_007), "5000.007");
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn events_are_ordered_and_balanced_for_nested_spans() {
        // parent [100, 500] wrapping child [200, 300]; sibling [500, 600]
        // starting exactly when parent ends.
        let records = [
            SpanRecord {
                name: "parent",
                id: 0,
                depth: 0,
                begin_ns: 100,
                wall_ns: 400,
                cpu_ns: 300,
                allocs: 0,
                alloc_bytes: 0,
            },
            SpanRecord {
                name: "child",
                id: 7,
                depth: 1,
                begin_ns: 200,
                wall_ns: 100,
                cpu_ns: 100,
                allocs: 2,
                alloc_bytes: 64,
            },
            SpanRecord {
                name: "sibling",
                id: 0,
                depth: 0,
                begin_ns: 500,
                wall_ns: 100,
                cpu_ns: 50,
                allocs: 0,
                alloc_bytes: 0,
            },
        ];
        let events = ordered_events(3, &records);
        let kinds: Vec<(String, char)> = events
            .iter()
            .map(|(_, json)| {
                let name = json.split("\"name\":\"").nth(1).unwrap();
                let name = name[..name.find('"').unwrap()].to_owned();
                let ph = json.split("\"ph\":\"").nth(1).unwrap().chars().next().unwrap();
                (name, ph)
            })
            .collect();
        let expect = [
            ("parent", 'B'),
            ("child", 'B'),
            ("child", 'E'),
            ("parent", 'E'), // E at ts=500 precedes sibling's B at ts=500
            ("sibling", 'B'),
            ("sibling", 'E'),
        ];
        assert_eq!(kinds.len(), expect.len());
        for (got, want) in kinds.iter().zip(expect) {
            assert_eq!((got.0.as_str(), got.1), want);
        }
        // A viewer replay never pops a name that isn't on top of the stack.
        let mut stack = Vec::new();
        for (name, ph) in &kinds {
            match ph {
                'B' => stack.push(name.clone()),
                _ => assert_eq!(stack.pop().as_deref(), Some(name.as_str())),
            }
        }
        assert!(stack.is_empty(), "unbalanced events");
    }

    #[test]
    fn export_is_valid_jsonish_and_carries_args() {
        let json = export_range_json(u64::MAX, u64::MAX); // empty window
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"process_name\""));
        let events = ordered_events(
            0,
            &[SpanRecord {
                name: "x",
                id: 9,
                depth: 0,
                begin_ns: 10,
                wall_ns: 5,
                cpu_ns: 3,
                allocs: 1,
                alloc_bytes: 32,
            }],
        );
        assert!(events[0].1.contains("\"cpu_ns\":3"));
        assert!(events[0].1.contains("\"alloc_bytes\":32"));
        assert!(events[0].1.contains("\"id\":9"));
    }
}

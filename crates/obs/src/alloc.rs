//! `PecanAlloc`: an opt-in counting global allocator.
//!
//! Wraps [`std::alloc::System`] and counts every allocation (and the
//! bytes it requested) in thread-local counters. Installed as the
//! `#[global_allocator]` of a test binary it turns "allocation-free hot
//! path" doc claims into asserted invariants, and span tracing reads the
//! same counters so every span reports how many allocations happened
//! inside it (zero deltas when the allocator is not installed).
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pecan_obs::PecanAlloc = pecan_obs::PecanAlloc;
//!
//! let before = pecan_obs::alloc_counts();
//! hot_path();
//! assert_eq!(pecan_obs::alloc_counts().0 - before.0, 0, "hot path allocated");
//! ```
//!
//! Counting is per-thread on purpose: an assertion about *this* thread's
//! hot path must not flake because another thread allocated concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // Const-initialised `Cell`s have no destructor to register, so these
    // are safe to touch from inside the allocator itself.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// `(allocations, bytes)` requested by the calling thread since it
/// started, as counted by [`PecanAlloc`]. Always `(0, 0)` unless
/// `PecanAlloc` is the process's `#[global_allocator]`.
pub fn alloc_counts() -> (u64, u64) {
    (ALLOCS.with(Cell::get), BYTES.with(Cell::get))
}

fn count(size: usize) {
    ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
    BYTES.with(|c| c.set(c.get().wrapping_add(size as u64)));
}

/// Counting allocator: [`System`] plus the thread-local tallies behind
/// [`alloc_counts`]. Zero-sized; install with `#[global_allocator]`.
#[derive(Debug, Default, Clone, Copy)]
pub struct PecanAlloc;

// SAFETY: defers every operation to `System` with the caller's layout
// unchanged; the only addition is thread-local bookkeeping, which cannot
// violate the `GlobalAlloc` contract.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for PecanAlloc {
    // SAFETY: our caller upholds `GlobalAlloc`'s contract for us.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        // SAFETY: `layout` is forwarded unchanged, so `System`'s
        // preconditions are exactly our caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: our caller upholds `GlobalAlloc`'s contract for us.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        // SAFETY: `layout` is forwarded unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: our caller upholds `GlobalAlloc`'s contract for us.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are forwarded unchanged; `ptr` came from
        // `System` because every allocating method here delegates to it.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: our caller upholds `GlobalAlloc`'s contract for us.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is a fresh allocation from the hot path's point of
        // view: growing a Vec you promised not to grow must be caught.
        count(new_size);
        // SAFETY: arguments forwarded unchanged to the allocator that
        // produced `ptr`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

//! Leveled, env-filtered structured stderr logger.
//!
//! One logfmt-style line per event:
//!
//! ```text
//! ts=1754556000.123 level=info target=serve::http msg="listening" addr=127.0.0.1:7878
//! ```
//!
//! The level comes from the `PECAN_LOG` environment variable
//! (`off|error|warn|info|debug|trace`, default `warn`), read once on
//! first use; [`set_level`] overrides it programmatically (used by the
//! `serve --log` flag and tests). Use through the [`log_error!`],
//! [`log_warn!`], [`log_info!`], [`log_debug!`] and [`log_trace!`]
//! macros, which skip all argument formatting when the level is
//! filtered out.
//!
//! [`log_error!`]: crate::log_error
//! [`log_warn!`]: crate::log_warn
//! [`log_info!`]: crate::log_info
//! [`log_debug!`]: crate::log_debug
//! [`log_trace!`]: crate::log_trace

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered `Error < Warn < Info < Debug < Trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or dropped-work conditions.
    Error = 1,
    /// Degraded-but-running conditions (the default threshold).
    Warn = 2,
    /// Lifecycle events: startup, shutdown, model registration.
    Info = 3,
    /// Per-decision detail: shedding, timeouts, drains.
    Debug = 4,
    /// Per-request firehose.
    Trace = 5,
}

impl Level {
    /// Lowercase name as printed in the `level=` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses `off|error|warn|info|debug|trace` (case-insensitive);
    /// `None` for unrecognized text. "off" parses as `None`-with-intent:
    /// it returns `Some(None)`.
    #[allow(clippy::option_option)]
    fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// 0 = off, 1..=5 = max enabled level, `UNSET` = consult `PECAN_LOG`.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNSET);
const UNSET: u8 = u8::MAX;

fn max_level() -> u8 {
    let cur = MAX_LEVEL.load(Ordering::Relaxed);
    if cur != UNSET {
        return cur;
    }
    let parsed = std::env::var("PECAN_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Some(Level::Warn));
    let resolved = parsed.map_or(0, |l| l as u8);
    // Racing initializers all derive the same value from the same env.
    MAX_LEVEL.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the `PECAN_LOG`-derived threshold; `None` disables logging.
pub fn set_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// Parses a `PECAN_LOG`-style spec and applies it. Returns `false` (and
/// changes nothing) if the text is unrecognized.
pub fn set_level_spec(spec: &str) -> bool {
    match Level::parse(spec) {
        Some(level) => {
            set_level(level);
            true
        }
        None => false,
    }
}

/// True when `level` passes the current filter. The macros check this
/// before formatting any arguments.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= max_level()
}

fn needs_quoting(v: &str) -> bool {
    v.is_empty() || v.bytes().any(|b| b <= b' ' || b == b'"' || b == b'=')
}

/// Writes one logfmt line to stderr. Prefer the `log_*!` macros, which
/// gate on [`enabled`] first.
pub fn write(level: Level, target: &str, msg: &str, kvs: &[(&str, String)]) {
    let ts = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    let mut line = format!(
        "ts={}.{:03} level={} target={} msg={:?}",
        ts.as_secs(),
        ts.subsec_millis(),
        level.as_str(),
        target,
        msg,
    );
    for (k, v) in kvs {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        if needs_quoting(v) {
            line.push_str(&format!("{v:?}"));
        } else {
            line.push_str(v);
        }
    }
    line.push('\n');
    // One write_all per line keeps concurrent lines intact.
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

/// Logs at an explicit [`Level`]: `log_at!(level, "target", "message",
/// key = value, ...)`. Values are captured with `ToString`.
#[macro_export]
macro_rules! log_at {
    ($lvl:expr, $target:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::log::enabled($lvl) {
            $crate::log::write(
                $lvl,
                $target,
                ::std::convert::AsRef::<str>::as_ref(&$msg),
                &[$((stringify!($key), ::std::string::ToString::to_string(&$val))),*],
            );
        }
    };
}

/// Logs at [`Level::Error`]; see [`log_at!`](crate::log_at).
#[macro_export]
macro_rules! log_error {
    ($($t:tt)*) => { $crate::log_at!($crate::log::Level::Error, $($t)*) };
}

/// Logs at [`Level::Warn`]; see [`log_at!`](crate::log_at).
#[macro_export]
macro_rules! log_warn {
    ($($t:tt)*) => { $crate::log_at!($crate::log::Level::Warn, $($t)*) };
}

/// Logs at [`Level::Info`]; see [`log_at!`](crate::log_at).
#[macro_export]
macro_rules! log_info {
    ($($t:tt)*) => { $crate::log_at!($crate::log::Level::Info, $($t)*) };
}

/// Logs at [`Level::Debug`]; see [`log_at!`](crate::log_at).
#[macro_export]
macro_rules! log_debug {
    ($($t:tt)*) => { $crate::log_at!($crate::log::Level::Debug, $($t)*) };
}

/// Logs at [`Level::Trace`]; see [`log_at!`](crate::log_at).
#[macro_export]
macro_rules! log_trace {
    ($($t:tt)*) => { $crate::log_at!($crate::log::Level::Trace, $($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_spec_parses_and_filters() {
        assert_eq!(Level::parse("INFO"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn quoting_rules() {
        assert!(!needs_quoting("plain-value_1.2:3"));
        assert!(needs_quoting("two words"));
        assert!(needs_quoting("a=b"));
        assert!(needs_quoting(""));
    }
}
